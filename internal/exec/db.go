package exec

import (
	"sort"
	"sync"

	"repro/internal/colstore"
	"repro/internal/compress"
	"repro/internal/segstore"
	"repro/internal/ssb"
)

// DB is a column-store SSBM database: the LINEORDER fact table and the four
// dimension tables, all stored column-wise.
//
// Physical design decisions match Section 5.4.2 of the paper:
//   - Dimension tables are sorted by their attribute hierarchy (customer
//     and supplier by region > nation > city; part by mfgr > category >
//     brand1; date chronologically), so predicates on hierarchy attributes
//     select contiguous position ranges.
//   - Customer, supplier and part keys are reassigned to be the row's
//     position ("dictionary encoding for the purpose of key reassignment"),
//     and fact foreign keys are rewritten accordingly. Date keeps its
//     yyyymmdd key, so date joins need a real lookup (the paper's "a full
//     join must be performed" case) — but chronological sorting still makes
//     year/yearmonth predicates contiguous in key space.
//   - The fact table is sorted by orderdate, secondarily by quantity and
//     discount.
type DB struct {
	Compressed bool
	Fact       *colstore.Table
	Dims       map[ssb.Dim]*colstore.Table

	// dateByKey maps yyyymmdd datekey -> position in the date dimension.
	dateByKey map[int32]int32
	// dateKeys holds the datekeys in storage (chronological) order — the
	// valid orderdate domain insert batches must draw from.
	dateKeys []int32
	// datePosDense is the dense form of dateByKey, anchored at dateKeyMin:
	// datePosDense[k-dateKeyMin] is the position for datekey k, -1 in the
	// yyyymmdd gaps. The fused pipeline resolves date joins with one array
	// index per fact row instead of a map lookup.
	datePosDense []int32
	dateKeyMin   int32
	numRows      int

	// projections are optional redundant sort orders of the fact table
	// (see projection.go).
	projections []*Projection

	// fusedPool recycles fused-scan worker state (selection bitmaps,
	// gather scratch, dense aggregation arrays) across queries; see
	// fused.go. Workers scrub their aggregation cells sparsely before
	// returning, so a pooled worker's arrays are always all-zero. A
	// pointer so projection clones (withFact) share one pool.
	fusedPool *sync.Pool

	// footCache memoizes per-column maximum block bytes for
	// EstimateFootprint (footprint.go); a pointer so projection clones
	// share it, keyed by column pointer so same-named projection columns
	// stay distinct.
	footCache *footprintCache

	// seg is the backing segment store for file-backed DBs (nil for
	// in-memory builds); the tuple mover appends frozen delta blocks to it.
	seg *segstore.Store
	// ingest is the write half of the WS/RS split (nil for read-only DBs):
	// the delta store, the current sealed snapshot, and the tuple mover.
	// See ingest.go.
	ingest *ingestState
}

// footprintCache is the concurrency-safe per-column max-block-bytes memo.
type footprintCache struct {
	mu  sync.Mutex
	max map[*colstore.Column]int64
}

// NumRows returns the fact cardinality a query starting now would see:
// sealed rows plus the live write-store delta.
func (db *DB) NumRows() int {
	ig := db.ingest
	if ig == nil {
		return db.numRows
	}
	ig.mu.Lock()
	defer ig.mu.Unlock()
	return ig.sealed.numRows + int(ig.ws.Pending())
}

// DatePos returns the date-dimension position for a datekey.
func (db *DB) DatePos(key int32) int32 { return db.dateByKey[key] }

// BuildDB loads generated SSBM data into column tables. compressed selects
// between per-block adaptive encodings and all-plain storage (the C / c
// halves of the Figure 7 sweep).
func BuildDB(d *ssb.Data, compressed bool) *DB {
	db := &DB{
		Compressed: compressed,
		Dims:       map[ssb.Dim]*colstore.Table{},
		numRows:    d.NumLineorders(),
		fusedPool:  &sync.Pool{},
		footCache:  &footprintCache{max: map[*colstore.Column]int64{}},
	}

	custPerm := hierarchyPerm(len(d.Customer.Key), d.Customer.Region, d.Customer.Nation, d.Customer.City)
	suppPerm := hierarchyPerm(len(d.Supplier.Key), d.Supplier.Region, d.Supplier.Nation, d.Supplier.City)
	partPerm := hierarchyPerm(len(d.Part.Key), d.Part.MFGR, d.Part.Category, d.Part.Brand1)

	db.Dims[ssb.DimCustomer] = buildDimTable("customer", compressed, custPerm, map[string][]string{
		"name": d.Customer.Name, "address": d.Customer.Address,
		"city": d.Customer.City, "nation": d.Customer.Nation,
		"region": d.Customer.Region, "phone": d.Customer.Phone,
		"mktsegment": d.Customer.MktSegment,
	}, nil, []string{"region", "nation", "city", "name", "address", "phone", "mktsegment"})

	db.Dims[ssb.DimSupplier] = buildDimTable("supplier", compressed, suppPerm, map[string][]string{
		"name": d.Supplier.Name, "address": d.Supplier.Address,
		"city": d.Supplier.City, "nation": d.Supplier.Nation,
		"region": d.Supplier.Region, "phone": d.Supplier.Phone,
	}, nil, []string{"region", "nation", "city", "name", "address", "phone"})

	db.Dims[ssb.DimPart] = buildDimTable("part", compressed, partPerm, map[string][]string{
		"name": d.Part.Name, "mfgr": d.Part.MFGR, "category": d.Part.Category,
		"brand1": d.Part.Brand1, "color": d.Part.Color, "type": d.Part.Type,
		"container": d.Part.Container,
	}, map[string][]int32{"size": d.Part.Size},
		[]string{"mfgr", "category", "brand1", "name", "color", "type", "container", "size"})

	// Date keeps generation (chronological) order; its key is yyyymmdd.
	datePerm := make([]int32, len(d.Date.Key))
	for i := range datePerm {
		datePerm[i] = int32(i)
	}
	db.Dims[ssb.DimDate] = buildDimTable("dwdate", compressed, datePerm, map[string][]string{
		"date": d.Date.Date, "dayofweek": d.Date.DayOfWeek, "month": d.Date.Month,
		"yearmonth": d.Date.YearMonth, "sellingseason": d.Date.SellingSeason,
	}, map[string][]int32{
		"datekey": d.Date.Key, "year": d.Date.Year,
		"yearmonthnum": d.Date.YearMonthNum, "daynuminweek": d.Date.DayNumInWeek,
		"daynuminmonth": d.Date.DayNumInMonth, "daynuminyear": d.Date.DayNumInYear,
		"monthnuminyear": d.Date.MonthNumInYr, "weeknuminyear": d.Date.WeekNumInYear,
	}, []string{"datekey", "year", "yearmonthnum", "yearmonth", "month",
		"monthnuminyear", "weeknuminyear", "daynuminweek", "daynuminmonth",
		"daynuminyear", "dayofweek", "date", "sellingseason"})

	db.buildDateIndex(d.Date.Key)

	// Store each position-keyed dimension's logical key alongside its
	// hierarchy attributes (the catalog's c_custkey/s_suppkey/p_partkey).
	// The write path needs it to remap inserted foreign keys to physical
	// positions — including after a round-trip through a segment file,
	// where the build-time permutations are long gone.
	addDimKey := func(dim ssb.Dim, perm []int32, keys []int32) {
		vals := make([]int32, len(perm))
		for p, orig := range perm {
			vals[p] = keys[orig]
		}
		db.Dims[dim].AddColumn(colstore.NewColumn(dim.FactFK(), vals, nil, colstore.Unsorted, compressed))
	}
	addDimKey(ssb.DimCustomer, custPerm, d.Customer.Key)
	addDimKey(ssb.DimSupplier, suppPerm, d.Supplier.Key)
	addDimKey(ssb.DimPart, partPerm, d.Part.Key)

	// Fact table: remap customer/supplier/part FKs to dimension
	// positions.
	custPos := invertKeyPerm(custPerm)
	suppPos := invertKeyPerm(suppPerm)
	partPos := invertKeyPerm(partPerm)
	n := d.NumLineorders()
	ck := make([]int32, n)
	sk := make([]int32, n)
	pk := make([]int32, n)
	for i := 0; i < n; i++ {
		ck[i] = custPos[d.Line.CustKey[i]-1]
		sk[i] = suppPos[d.Line.SuppKey[i]-1]
		pk[i] = partPos[d.Line.PartKey[i]-1]
	}

	fact := colstore.NewTable("lineorder")
	addInt := func(name string, vals []int32, sorted colstore.SortKind) {
		fact.AddColumn(colstore.NewColumn(name, vals, nil, sorted, compressed))
	}
	addStr := func(name string, vals []string) {
		dict := compress.BuildDict(vals)
		fact.AddColumn(colstore.NewColumn(name, dict.Encode(vals, nil), dict, colstore.Unsorted, compressed))
	}
	addInt("orderkey", d.Line.OrderKey, colstore.Unsorted)
	addInt("linenumber", d.Line.LineNumber, colstore.Unsorted)
	addInt("custkey", ck, colstore.Unsorted)
	addInt("partkey", pk, colstore.Unsorted)
	addInt("suppkey", sk, colstore.Unsorted)
	addInt("orderdate", d.Line.OrderDate, colstore.PrimarySort)
	addStr("ordpriority", d.Line.OrdPriority)
	addInt("shippriority", d.Line.ShipPriority, colstore.Unsorted)
	addInt("quantity", d.Line.Quantity, colstore.SecondarySort)
	addInt("extendedprice", d.Line.ExtendedPrice, colstore.Unsorted)
	addInt("ordtotalprice", d.Line.OrdTotalPrice, colstore.Unsorted)
	addInt("discount", d.Line.Discount, colstore.SecondarySort)
	addInt("revenue", d.Line.Revenue, colstore.Unsorted)
	addInt("supplycost", d.Line.SupplyCost, colstore.Unsorted)
	addInt("tax", d.Line.Tax, colstore.Unsorted)
	addInt("commitdate", d.Line.CommitDate, colstore.Unsorted)
	addStr("shipmode", d.Line.ShipMode)
	db.Fact = fact
	return db
}

// buildDateIndex derives the date join structures from the date dimension's
// key column in storage order: the key->position map used by the per-probe
// path and the dense key->position array the fused pipeline indexes into.
// Shared by BuildDB (keys from the generator) and OpenSegmentDB (keys
// decoded from the stored dwdate table).
func (db *DB) buildDateIndex(keys []int32) {
	db.dateKeys = append([]int32(nil), keys...)
	db.dateByKey = make(map[int32]int32, len(keys))
	for i, k := range keys {
		db.dateByKey[k] = int32(i)
	}
	if len(keys) == 0 {
		return
	}
	mn, mx := keys[0], keys[0]
	for _, k := range keys {
		if k < mn {
			mn = k
		}
		if k > mx {
			mx = k
		}
	}
	db.dateKeyMin = mn
	db.datePosDense = make([]int32, int(mx-mn)+1)
	for i := range db.datePosDense {
		db.datePosDense[i] = -1
	}
	for i, k := range keys {
		db.datePosDense[k-mn] = int32(i)
	}
}

// hierarchyPerm returns the permutation (new position -> original row) that
// sorts dimension rows lexicographically by the given attribute hierarchy.
func hierarchyPerm(n int, levels ...[]string) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ia, ib := perm[a], perm[b]
		for _, lvl := range levels {
			if lvl[ia] != lvl[ib] {
				return lvl[ia] < lvl[ib]
			}
		}
		return ia < ib
	})
	return perm
}

// invertKeyPerm converts a permutation (new position -> original row) into
// a lookup from original row to new position.
func invertKeyPerm(perm []int32) []int32 {
	inv := make([]int32, len(perm))
	for newPos, orig := range perm {
		inv[orig] = int32(newPos)
	}
	return inv
}

// buildDimTable materializes a dimension table in perm order. strCols are
// dictionary encoded; intCols stored as-is. order fixes column ordering for
// reproducible stats output; the first column is the hierarchy root and is
// marked as the table's primary sort.
func buildDimTable(name string, compressed bool, perm []int32, strCols map[string][]string, intCols map[string][]int32, order []string) *colstore.Table {
	t := colstore.NewTable(name)
	for i, colName := range order {
		sorted := colstore.Unsorted
		if i == 0 {
			sorted = colstore.PrimarySort
		}
		if vals, ok := strCols[colName]; ok {
			re := make([]string, len(perm))
			for p, orig := range perm {
				re[p] = vals[orig]
			}
			dict := compress.BuildDict(re)
			t.AddColumn(colstore.NewColumn(colName, dict.Encode(re, nil), dict, sorted, compressed))
			continue
		}
		vals := intCols[colName]
		re := make([]int32, len(perm))
		for p, orig := range perm {
			re[p] = vals[orig]
		}
		t.AddColumn(colstore.NewColumn(colName, re, nil, sorted, compressed))
	}
	return t
}
