package exec

import (
	"context"
	"testing"
	"time"

	"repro/internal/iosim"
	"repro/internal/obs"
	"repro/internal/ssb"
)

// traceConfigs is the engine matrix the trace tests sweep: per-probe, fused
// at one and many workers, kernels off, and early materialization.
func traceConfigs() []struct {
	label string
	cfg   Config
} {
	nk := FusedOpt
	nk.NoKernels = true
	early := FullOpt
	early.LateMat = false
	w8 := FusedOpt
	w8.Workers = 8
	return []struct {
		label string
		cfg   Config
	}{
		{"per-probe", FullOpt},
		{"fused-w1", FusedOpt},
		{"fused-w8", w8},
		{"fused-nokernels", nk},
		{"early-mat", early},
	}
}

// TestTracedDifferential pins the first law of the tracing layer: attaching
// a trace must not change anything — results bit-identical, and the
// query's iosim.Stats (the whole struct, every counter) equal to the
// untraced run's. It also pins the accounting law that makes traces
// trustworthy: summing the per-stage counters reproduces the query's total
// Stats exactly, for every engine.
func TestTracedDifferential(t *testing.T) {
	data := ssb.Generate(0.01)
	db := BuildDB(data, true)
	const trials = 40

	for _, tc := range traceConfigs() {
		for i := 0; i < trials; i++ {
			seed := diffSeedBase + int64(i)
			q := ssb.RandQuery(seed)

			var stPlain iosim.Stats
			plain, err := db.RunCtx(context.Background(), q, tc.cfg, &stPlain)
			if err != nil {
				t.Fatalf("%s seed %d: %v", tc.label, seed, err)
			}

			tr := &obs.Trace{}
			var stTraced iosim.Stats
			traced, err := db.RunCtx(obs.WithTrace(context.Background(), tr), q, tc.cfg, &stTraced)
			if err != nil {
				t.Fatalf("%s seed %d (traced): %v", tc.label, seed, err)
			}

			if !traced.Equal(plain) {
				t.Errorf("%s seed %d: tracing changed the result\nSQL: %s\n%s",
					tc.label, seed, q.SQL(), plain.Diff(traced))
			}
			if stPlain != stTraced {
				t.Errorf("%s seed %d: tracing changed the I/O accounting\nuntraced %+v\ntraced   %+v",
					tc.label, seed, stPlain, stTraced)
			}
			if tr.Engine == "" || len(tr.Stages) == 0 || tr.WallNs <= 0 {
				t.Fatalf("%s seed %d: degenerate trace: engine=%q stages=%d wall=%d",
					tc.label, seed, tr.Engine, len(tr.Stages), tr.WallNs)
			}
			if tr.Config != tc.cfg.Code() {
				t.Errorf("%s seed %d: trace config %q, want %q", tc.label, seed, tr.Config, tc.cfg.Code())
			}

			tot := tr.Totals()
			stageSum := iosim.Stats{
				BytesRead: tot.BytesRead,
				// Writes and seeks are not stage-attributed; carry them over
				// so the whole-struct comparison pins everything else.
				BytesWritten:  stTraced.BytesWritten,
				Seeks:         stTraced.Seeks,
				BlocksFetched: tot.BlocksFetched,
				BlocksPruned:  tot.BlocksPruned,
				BlocksCovered: tot.BlocksCovered,
				DecodedBytes:  tot.DecodedBytes,
				KernelFolds:   tot.KernelFolds,
				Gathers:       tot.Gathers,
			}
			if stageSum != stTraced {
				t.Errorf("%s seed %d: stage sum does not reconcile with query stats\nSQL: %s\nstages %+v\nstats  %+v",
					tc.label, seed, q.SQL(), stageSum, stTraced)
			}
		}
	}
}

// TestTraceConsistencyPool cross-checks the trace against ground truth that
// tracing cannot see: on a fresh segment-backed store, a stage table's
// total block-fetch count must equal the buffer pool's acquire count
// (hits+misses) for the run, and its bytes-read total the query's charged
// I/O. The 13 SSBM queries cover every probe shape.
func TestTraceConsistencyPool(t *testing.T) {
	data := ssb.Generate(0.01)
	db := BuildDB(data, true)

	for _, tc := range traceConfigs() {
		segDB, store := segBackedDB(t, db, data.SF, 0)
		for _, q := range ssb.Queries() {
			ps0 := store.Pool().Stats()
			tr := &obs.Trace{}
			var st iosim.Stats
			res, err := segDB.RunCtx(obs.WithTrace(context.Background(), tr), q, tc.cfg, &st)
			if err != nil {
				t.Fatalf("%s Q%s: %v", tc.label, q.ID, err)
			}
			want := ssb.Reference(data, q)
			if !res.Equal(want) {
				t.Fatalf("%s Q%s: wrong result under trace\n%s", tc.label, q.ID, want.Diff(res))
			}
			ps1 := store.Pool().Stats()
			acquires := (ps1.Hits - ps0.Hits) + (ps1.Misses - ps0.Misses)
			tot := tr.Totals()
			if tot.BlocksFetched != acquires {
				t.Errorf("%s Q%s: trace fetched=%d, pool acquires=%d\n%s",
					tc.label, q.ID, tot.BlocksFetched, acquires, tr.String())
			}
			if tot.BytesRead != st.BytesRead {
				t.Errorf("%s Q%s: trace read=%d, stats read=%d", tc.label, q.ID, tot.BytesRead, st.BytesRead)
			}
		}
	}
}

// TestTraceShapeQ11 pins the trace's content on the best-understood plan in
// the repo: Q1.1 fused runs one probe stage per planned probe plus plan and
// extract+aggregate, and its probe rows narrow monotonically.
func TestTraceShapeQ11(t *testing.T) {
	data := ssb.Generate(0.01)
	db := BuildDB(data, true)
	q := ssb.QueryByID("1.1")
	tr := &obs.Trace{}
	var st iosim.Stats
	if _, err := db.RunCtx(obs.WithTrace(context.Background(), tr), q, FusedOpt, &st); err != nil {
		t.Fatal(err)
	}
	if tr.Engine != "fused" || tr.Query != "1.1" {
		t.Fatalf("trace header: %+v", tr)
	}
	var probes []obs.Stage
	for _, s := range tr.Stages {
		if s.Name == "probe" {
			probes = append(probes, s)
		}
	}
	if len(probes) != 3 {
		t.Fatalf("Q1.1 fused has %d probe stages, want 3:\n%s", len(probes), tr.String())
	}
	for i, p := range probes {
		if p.RowsOut > p.RowsIn {
			t.Errorf("probe %d grew candidates: %d -> %d", i, p.RowsIn, p.RowsOut)
		}
		if i > 0 && p.RowsIn != probes[i-1].RowsOut {
			t.Errorf("probe %d rows in %d != previous rows out %d", i, p.RowsIn, probes[i-1].RowsOut)
		}
	}
	last := tr.Stages[len(tr.Stages)-1]
	if last.Name != "extract+aggregate" || last.RowsIn != probes[2].RowsOut {
		t.Errorf("tail stage %q rows in %d, want extract+aggregate fed %d", last.Name, last.RowsIn, probes[2].RowsOut)
	}
}

// BenchmarkTraceOverhead guards the nil-trace fast path: the "untraced"
// variant runs the instrumented engines with no trace attached (the
// production default) and exists to be compared against "traced" and
// against pre-instrumentation baselines; the per-block cost of tracing off
// must stay in the noise (<2% on Q1.1).
func BenchmarkTraceOverhead(b *testing.B) {
	data := ssb.Generate(0.01)
	db := BuildDB(data, true)
	q := ssb.QueryByID("1.1")
	b.Run("untraced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var st iosim.Stats
			if _, err := db.RunCtx(context.Background(), q, FusedOpt, &st); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var st iosim.Stats
			tr := &obs.Trace{}
			if _, err := db.RunCtx(obs.WithTrace(context.Background(), tr), q, FusedOpt, &st); err != nil {
				b.Fatal(err)
			}
		}
	})
	// traced+recorded is the always-on serving path: trace attached AND the
	// flight recorder fed a QueryRecord per run. The recorder adds one
	// mutex-guarded ring write over "traced" — the budget is <5%.
	b.Run("traced+recorded", func(b *testing.B) {
		rec := obs.NewRecorder(512)
		for i := 0; i < b.N; i++ {
			var st iosim.Stats
			tr := &obs.Trace{}
			t0 := time.Now()
			if _, err := db.RunCtx(obs.WithTrace(context.Background(), tr), q, FusedOpt, &st); err != nil {
				b.Fatal(err)
			}
			rec.Record(obs.QueryRecord{
				UnixNano: t0.UnixNano(),
				Query:    tr.Query,
				Engine:   tr.Engine,
				Config:   tr.Config,
				Workers:  tr.Workers,
				Epoch:    tr.Epoch,
				ExecNs:   int64(time.Since(t0)),
				Totals:   tr.Totals(),
			})
		}
		if rec.Len() == 0 {
			b.Fatal("recorder stayed empty")
		}
	})
}
