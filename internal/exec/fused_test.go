package exec

import (
	"context"

	"testing"

	"repro/internal/compress"
	"repro/internal/iosim"
	"repro/internal/ssb"
)

// TestFusedMatchesReference: the fused pipeline returns exactly the
// reference result on all thirteen queries, on compressed and plain
// storage, with the invisible join on and off.
func TestFusedMatchesReference(t *testing.T) {
	cfgs := []Config{
		{BlockIter: true, InvisibleJoin: true, Compression: true, LateMat: true, Fused: true},
		{BlockIter: true, InvisibleJoin: false, Compression: true, LateMat: true, Fused: true},
		{BlockIter: true, InvisibleJoin: true, Compression: false, LateMat: true, Fused: true},
		{BlockIter: true, InvisibleJoin: false, Compression: false, LateMat: true, Fused: true},
	}
	for _, q := range ssb.Queries() {
		want := ssb.Reference(testData, q)
		for _, cfg := range cfgs {
			var st iosim.Stats
			got := dbFor(cfg).Run(q, cfg, &st)
			if !got.Equal(want) {
				t.Errorf("Q%s fused config %s IJ=%v C=%v: results differ\n%s",
					q.ID, cfg.Code(), cfg.InvisibleJoin, cfg.Compression, want.Diff(got))
			}
			if st.BytesRead == 0 {
				t.Errorf("Q%s fused config %s: no I/O charged", q.ID, cfg.Code())
			}
		}
	}
}

// TestFusedParallelDeterminism: all 13 SSBM queries render byte-identical
// results with Workers=1 vs Workers=8, fused vs unfused, and match the
// reference. The fused merge is commutative int64 addition over per-worker
// partials, so worker count must never show through.
func TestFusedParallelDeterminism(t *testing.T) {
	for _, q := range ssb.Queries() {
		want := ssb.Reference(testData, q)
		wantStr := want.String()
		for _, fused := range []bool{false, true} {
			var base string
			var baseIO int64
			for _, workers := range []int{1, 8} {
				cfg := FullOpt
				cfg.Fused = fused
				cfg.Workers = workers
				var st iosim.Stats
				got := testDBC.Run(q, cfg, &st)
				if !got.Equal(want) {
					t.Fatalf("Q%s fused=%v workers=%d diverges from reference:\n%s",
						q.ID, fused, workers, want.Diff(got))
				}
				if s := got.String(); s != wantStr && s == "" {
					t.Fatalf("Q%s: empty rendering", q.ID)
				} else if workers == 1 {
					base = s
					baseIO = st.BytesRead
				} else {
					if s != base {
						t.Errorf("Q%s fused=%v: workers=8 rendering differs from workers=1", q.ID, fused)
					}
					if st.BytesRead != baseIO {
						t.Errorf("Q%s fused=%v: workers=8 I/O %d != workers=1 I/O %d",
							q.ID, fused, st.BytesRead, baseIO)
					}
				}
			}
		}
	}
}

// TestFusedFlagInertWithoutBlockIter: Fused requires block iteration and
// late materialization; with either ablated the flag must not change
// results (it falls back to the faithful paths).
func TestFusedFlagInertWithoutBlockIter(t *testing.T) {
	cfgs := []Config{
		{BlockIter: false, InvisibleJoin: true, Compression: true, LateMat: true, Fused: true},
		{BlockIter: true, InvisibleJoin: false, Compression: true, LateMat: false, Fused: true},
	}
	for _, id := range []string{"1.1", "3.2", "4.3"} {
		q := ssb.QueryByID(id)
		want := ssb.Reference(testData, q)
		for _, cfg := range cfgs {
			if got := dbFor(cfg).Run(q, cfg, nil); !got.Equal(want) {
				t.Errorf("Q%s config %s Fused-inert: results differ\n%s", id, cfg.Code(), want.Diff(got))
			}
		}
	}
}

// TestFusedHugeGroupSpaceFallback: a composite group space beyond the dense
// limit must route to the hash-aggregation fallback and still match the
// reference.
func TestFusedHugeGroupSpaceFallback(t *testing.T) {
	q := &ssb.Query{
		ID:  "fused-huge",
		Agg: ssb.AggRevenue,
		DimFilters: []ssb.DimFilter{
			{Dim: ssb.DimDate, Col: "yearmonthnum", Op: compress.OpEq, IsInt: true, IntA: 199406},
		},
		GroupBy: []ssb.GroupCol{
			{Dim: ssb.DimCustomer, Col: "name"},
			{Dim: ssb.DimPart, Col: "name"},
			{Dim: ssb.DimDate, Col: "date"},
		},
	}
	if space := testDBC.fusedGroupSpace(q); space <= denseLimit {
		t.Skipf("group space %d fits dense arrays at this scale; fallback not exercised", space)
	}
	want := ssb.Reference(testData, q)
	cfg := FusedOpt
	got := testDBC.Run(q, cfg, nil)
	if !got.Equal(want) {
		t.Fatalf("huge group space fallback diverges:\n%s", want.Diff(got))
	}
}

// TestFusedDenseProbePlan: under the fused config the city-IN restriction
// must plan as a dense-bitmap probe, not a hash set.
func TestFusedDenseProbePlan(t *testing.T) {
	// The cities of the first and last supplier in sort order: both are
	// non-empty by construction and (different regions) their position
	// runs cannot be adjacent, so the probe cannot collapse to a between
	// predicate.
	cityCol := testDBC.Dims[ssb.DimSupplier].MustColumn("city")
	nSupp := int32(testDBC.Dims[ssb.DimSupplier].NumRows())
	first, last := cityCol.ValueString(0), cityCol.ValueString(nSupp-1)
	if first == last {
		t.Skip("single-city supplier dimension at this scale")
	}
	cityFilter := ssb.DimFilter{
		Dim: ssb.DimSupplier, Col: "city", Op: compress.OpIn,
		StrSet: []string{first, last},
	}
	probe := testDBC.dimProbe(ssb.DimSupplier, []ssb.DimFilter{cityFilter}, FusedOpt, nil)
	if probe.isPred {
		t.Fatal("cross-region city IN should not rewrite to a between predicate")
	}
	if probe.dense == nil {
		t.Fatal("fused config should build a dense probe set")
	}
	if probe.set != nil {
		t.Fatal("fused config should not build the hash set")
	}
	if probe.keyCount() == 0 || probe.setMax < probe.setMin {
		t.Fatalf("dense probe bounds broken: count=%d range=[%d,%d]", probe.keyCount(), probe.setMin, probe.setMax)
	}
	// Membership must agree with the per-probe hash set.
	hashProbe := testDBC.dimProbe(ssb.DimSupplier, []ssb.DimFilter{cityFilter}, FullOpt, nil)
	n := testDBC.Dims[ssb.DimSupplier].NumRows()
	for v := int32(0); v < int32(n); v++ {
		if probe.matches(v) != hashProbe.matches(v) {
			t.Fatalf("dense/hash membership disagree at key %d", v)
		}
	}
}

// TestProbeSetMinMaxPruning: a membership probe whose key range excludes
// most blocks of a sorted column must charge less I/O than the whole
// column, and still match a full-scan evaluation.
func TestProbeSetMinMaxPruning(t *testing.T) {
	col := testDBC.Fact.MustColumn("orderdate")
	if col.NumBlocks() < 2 {
		t.Skip("need at least two blocks to observe pruning")
	}
	// One datekey early in the sort order: later blocks cannot intersect.
	key := col.Get(0)
	probe := &factProbe{
		col:    col,
		set:    map[int32]struct{}{key: {}},
		setMin: key,
		setMax: key,
	}
	var st iosim.Stats
	pos := testDBC.probeSet(context.Background(), probe, nil, FullOpt, &st)
	if pos.Len() == 0 {
		t.Fatal("probe found no rows for an existing datekey")
	}
	if full := col.CompressedBytes(); st.BytesRead >= full {
		t.Fatalf("pruned probe read %d of %d column bytes", st.BytesRead, full)
	}
	// Parallel path prunes identically.
	var stPar iosim.Stats
	posPar := parallelProbeSet(context.Background(), probe, 4, &stPar)
	if posPar.Len() != pos.Len() || stPar.BytesRead != st.BytesRead {
		t.Fatalf("parallel pruning diverges: len %d vs %d, io %d vs %d",
			posPar.Len(), pos.Len(), stPar.BytesRead, st.BytesRead)
	}
}
