package exec

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/delta"
	"repro/internal/ssb"
	"repro/internal/wal"
)

// This file is the durability layer over the write path: a write-ahead log
// in front of the delta store, replay-on-open that reconstructs the exact
// pre-crash write-store state, and deletion vectors.
//
// Log shape. Every log generation starts with one Base record anchoring it
// to a known sealed state (file row count + sealed deletion vector), then
// Insert records (one per accepted batch, columns positionally in
// factColOrder), Delete records (sealed row indexes + WAL-relative delta
// row indexes), and Checkpoint records written by the tuple mover after a
// compaction lands. After each compaction the log is atomically rewritten
// to just the live tail — Base + pending inserts + live WS tombstones — so
// it stays proportional to the unflushed delta, not to history.
//
// Recovery. Replay folds the records into (sealed watermark, pending
// batches, deletion vectors) and compares the checkpointed file row count
// against the actual segment file. A crash can lose at most the very last
// compaction's checkpoint (passes serialize under compactMu and each commits
// its checkpoint before releasing it), so any surplus file rows are exactly
// one un-checkpointed pass: the watermark advances over the shortest pending
// prefix containing that many live rows. Acked rows are therefore replayed
// exactly once — either they are under the watermark (already in the file)
// or they are rebuilt into the delta — and un-acked rows at the torn tail
// are dropped by the WAL's CRC scan.

// EnableWAL attaches a write-ahead log to a DB that already has a write
// store (EnableDelta) with no rows in it, replaying any existing log at
// path into the delta store and deletion vectors first. Call it before
// StartCompactor and before serving traffic; after it returns, every
// accepted Insert/Delete is group-committed to disk before acking.
func (db *DB) EnableWAL(path string, opts wal.Options) error {
	ig := db.ingest
	if ig == nil {
		return fmt.Errorf("exec: EnableWAL requires a write store (EnableDelta first)")
	}
	if ig.wal != nil {
		return fmt.Errorf("exec: WAL already enabled")
	}
	if ig.ws.Total() != 0 {
		return fmt.Errorf("exec: EnableWAL must run before any insert (write store holds %d rows)", ig.ws.Total())
	}

	l, recs, err := wal.Open(path, opts)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		_ = l.Close()
		return err
	}

	if len(recs) == 0 {
		// Fresh log: anchor it at the current sealed state, durably.
		if err := l.Rewrite([]wal.Record{wal.Base{FileRows: int64(db.numRows)}}); err != nil {
			return fail(err)
		}
		ig.mu.Lock()
		ig.wal = l
		ig.walBase = 0
		ig.mu.Unlock()
		return nil
	}

	rep, err := replayWAL(recs, int64(db.numRows))
	if err != nil {
		return fail(err)
	}

	// Rebuild the pending delta, batch-for-batch, skipping the sealed
	// prefix (a batch can straddle the watermark when a crash interrupted
	// the post-compaction rewrite: replay trims its sealed head).
	var walIdx int64
	for _, ins := range rep.inserts {
		n := int64(len(ins.Cols[0]))
		lo := walIdx
		walIdx += n
		if walIdx <= rep.sealed {
			continue
		}
		off := int64(0)
		if lo < rep.sealed {
			off = rep.sealed - lo
		}
		dcols := make([]delta.Column, len(factColOrder))
		for i, name := range factColOrder {
			dcols[i] = delta.Column{Name: name, Vals: ins.Cols[i][off:]}
		}
		batch, err := delta.NewBatch(dcols)
		if err != nil {
			return fail(err)
		}
		ig.ws.Append(batch)
	}

	// Rebase WS tombstones from WAL space into the rebuilt store's global
	// space (which restarts at 0 = first pending row).
	var delWS *bitmap.Bitmap
	var tombWS int64
	if rep.delWS != nil {
		nb := bitmap.New(int(rep.total - rep.sealed))
		for g := rep.sealed; g < rep.total; g++ {
			if rep.delWS.Get(int(g)) {
				nb.Set(int(g - rep.sealed))
				tombWS++
			}
		}
		if tombWS > 0 {
			delWS = nb
		}
	}
	var tombSealed int64
	delSealed := rep.delSealed
	if delSealed != nil {
		tombSealed = int64(delSealed.Count())
		if tombSealed == 0 {
			delSealed = nil
		}
	}

	ig.mu.Lock()
	ig.wal = l
	ig.walBase = 0
	ig.delSealed = delSealed
	ig.delWS = delWS
	ig.tombSealed = tombSealed
	ig.tombWS = tombWS
	// Replayed deletes must bump the epoch off zero: the frozen-base guards
	// and result caches key on it, and a "no writes yet" epoch over
	// tombstoned data would let non-snapshot engines serve deleted rows.
	ig.deletes.Store(rep.deleteOps)
	ig.mu.Unlock()

	// Rewrite the log to the recovered state: the sealed prefix and any
	// torn tail are gone, WAL row space re-anchors at the rebuilt store's
	// row 0, and the recovery inference above never has to run twice.
	if err := l.Rewrite(walSnapshotRecords(int64(db.numRows), delSealed, ig.ws.Snapshot(), delWS)); err != nil {
		ig.mu.Lock()
		ig.wal = nil
		ig.mu.Unlock()
		return fail(err)
	}
	return nil
}

// walReplay is the state a log's records fold into.
type walReplay struct {
	sealed    int64 // WAL-space rows already in the segment file
	total     int64 // WAL-space rows ever appended
	inserts   []wal.Insert
	delSealed *bitmap.Bitmap // sealed-side tombstones, length = actual file rows
	delWS     *bitmap.Bitmap // WAL-space tombstones, length = total
	deleteOps int64
}

// replayWAL reduces a replayed record sequence against the actual segment
// file row count, running the crash-seal inference for a lost checkpoint.
func replayWAL(recs []wal.Record, actualRows int64) (*walReplay, error) {
	base, ok := recs[0].(wal.Base)
	if !ok {
		return nil, fmt.Errorf("exec: WAL does not start with a base record (%T)", recs[0])
	}
	if actualRows < base.FileRows {
		return nil, fmt.Errorf("exec: segment store has %d rows but the WAL base records %d — store truncated?", actualRows, base.FileRows)
	}
	rep := &walReplay{}
	expectRows := base.FileRows
	if base.DelLen > 0 {
		if base.DelLen != base.FileRows {
			return nil, fmt.Errorf("exec: WAL base deletion vector covers %d rows, base file has %d", base.DelLen, base.FileRows)
		}
		rep.delSealed = bitmap.FromWords(append([]uint64(nil), base.DelWords...), int(base.DelLen)).Grow(int(actualRows))
	}
	for _, r := range recs[1:] {
		switch r := r.(type) {
		case wal.Base:
			return nil, fmt.Errorf("exec: duplicate WAL base record")
		case wal.Insert:
			if len(r.Cols) != len(factColOrder) {
				return nil, fmt.Errorf("exec: WAL insert has %d columns, want %d", len(r.Cols), len(factColOrder))
			}
			rep.inserts = append(rep.inserts, r)
			rep.total += int64(len(r.Cols[0]))
		case wal.Delete:
			for _, p := range r.Sealed {
				if int64(p) >= actualRows {
					return nil, fmt.Errorf("exec: WAL delete tombstones sealed row %d past file end %d", p, actualRows)
				}
				if rep.delSealed == nil {
					rep.delSealed = bitmap.New(int(actualRows))
				}
				rep.delSealed.Set(int(p))
			}
			for _, i := range r.WS {
				if i < 0 || i >= rep.total {
					return nil, fmt.Errorf("exec: WAL delete tombstones delta row %d outside [0,%d)", i, rep.total)
				}
				if rep.delWS == nil || rep.delWS.Len() < int(rep.total) {
					nb := bitmap.New(int(rep.total))
					if rep.delWS != nil {
						nb.Or(rep.delWS.Grow(int(rep.total)))
					}
					rep.delWS = nb
				}
				rep.delWS.Set(int(i))
			}
			rep.deleteOps++
		case wal.Checkpoint:
			if r.SealedRows < rep.sealed || r.SealedRows > rep.total {
				return nil, fmt.Errorf("exec: WAL checkpoint watermark %d outside [%d,%d]", r.SealedRows, rep.sealed, rep.total)
			}
			if r.FileRows < expectRows || r.FileRows > actualRows {
				return nil, fmt.Errorf("exec: WAL checkpoint file rows %d outside [%d,%d]", r.FileRows, expectRows, actualRows)
			}
			// Cross-check: the pass's file growth must equal the live rows
			// of the prefix it consumed (tombstones below a checkpoint are
			// final by the time it is written — deletes and compactions
			// serialize, and the checkpoint commits before the pass ends).
			if grew, live := r.FileRows-expectRows, liveRows(rep.delWS, rep.sealed, r.SealedRows); grew != live {
				return nil, fmt.Errorf("exec: WAL checkpoint grew the file by %d rows but consumed %d live delta rows", grew, live)
			}
			rep.sealed = r.SealedRows
			expectRows = r.FileRows
		}
	}
	if rep.delWS != nil && rep.delWS.Len() < int(rep.total) {
		rep.delWS = rep.delWS.Grow(int(rep.total))
	}
	// Crash-seal inference: file rows beyond the last durable checkpoint
	// are exactly one compaction pass that crashed before checkpointing.
	// Advance the watermark over the shortest prefix holding that many live
	// rows. (A tombstoned run straight after is ambiguous — the pass may or
	// may not have consumed it — but harmless either way: those rows are
	// invisible, and if rebuilt into the delta they are re-purged later.)
	if extra := actualRows - expectRows; extra > 0 {
		var live int64
		i := rep.sealed
		for ; i < rep.total && live < extra; i++ {
			if rep.delWS == nil || !rep.delWS.Get(int(i)) {
				live++
			}
		}
		if live != extra {
			return nil, fmt.Errorf("exec: segment store has %d rows past the WAL frontier but the log holds only %d live unsealed rows", extra, live)
		}
		rep.sealed = i
	}
	return rep, nil
}

// liveRows counts non-tombstoned WAL-space rows in [lo, hi).
func liveRows(delWS *bitmap.Bitmap, lo, hi int64) int64 {
	if delWS == nil {
		return hi - lo
	}
	var n int64
	for i := lo; i < hi; i++ {
		if !delWS.Get(int(i)) {
			n++
		}
	}
	return n
}

// walSnapshotRecords renders the current write-store state as a fresh log
// generation: the anchor Base (file rows + sealed tombstones), one Insert
// per pending batch, and a single Delete carrying the live WS tombstones
// rebased to the view's first row (= WAL row 0 of the new generation).
// Callers hold ig.mu (or have exclusive access), so the snapshot is
// frontier-consistent; batch column slices are shared with the live store,
// which is safe because Rewrite encodes synchronously and batches are
// immutable.
func walSnapshotRecords(fileRows int64, delSealed *bitmap.Bitmap, view *delta.View, delWS *bitmap.Bitmap) []wal.Record {
	base := wal.Base{FileRows: fileRows}
	if delSealed != nil && delSealed.Any() {
		base.DelLen = int64(delSealed.Len())
		base.DelWords = append([]uint64(nil), delSealed.Words()...)
	}
	recs := []wal.Record{base}
	var del wal.Delete
	start := view.Lo()
	next := start
	view.ForEach(func(b *delta.Batch, lo, hi int) bool {
		cols := make([][]int32, len(factColOrder))
		for i, name := range factColOrder {
			cols[i] = b.Col(name)[lo:hi]
		}
		recs = append(recs, wal.Insert{Cols: cols})
		if delWS != nil {
			for g := next; g < next+int64(hi-lo); g++ {
				if g < int64(delWS.Len()) && delWS.Get(int(g)) {
					del.WS = append(del.WS, g-start)
				}
			}
		}
		next += int64(hi - lo)
		return true
	})
	if len(del.WS) > 0 {
		recs = append(recs, del)
	}
	return recs
}

// deletableCols are the fact columns whose stored physical representation
// equals the logical value, so a logical predicate evaluates directly
// against storage. Foreign-key columns (remapped to dimension positions)
// and dictionary-coded strings are excluded: a value predicate on them
// would silently compare against physical codes.
var deletableCols = map[string]bool{
	"orderkey": true, "linenumber": true, "orderdate": true,
	"shippriority": true, "quantity": true, "extendedprice": true,
	"ordtotalprice": true, "discount": true, "revenue": true,
	"supplycost": true, "tax": true, "commitdate": true,
}

// Delete tombstones every visible row matching all the given fact-column
// predicates and returns how many it newly deleted. The operation is
// durable before it returns (WAL record + group commit) and atomic for
// readers: queries snapshotted before it see none of the tombstones,
// queries after see all of them, on every engine. Tombstoned rows stay
// physically resident until the tuple mover purges the delta side; sealed-
// side rows are masked forever (segments are immutable). At least one
// predicate is required, and only identity-valued fact columns may be
// referenced.
func (db *DB) Delete(filters []ssb.FactFilter) (int64, error) {
	ig := db.ingest
	if ig == nil {
		return 0, fmt.Errorf("exec: DB has no write store (EnableDelta first)")
	}
	if len(filters) == 0 {
		return 0, fmt.Errorf("exec: delete needs at least one predicate")
	}
	for _, f := range filters {
		if !deletableCols[f.Col] {
			return 0, fmt.Errorf("exec: column %q is not deletable by value (identity-valued fact columns only)", f.Col)
		}
	}
	// compactMu is held across evaluate + log + apply: the frontier cannot
	// move mid-delete, and the WAL sees deletes and checkpoints in a serial
	// order the recovery inference can trust.
	ig.compactMu.Lock()
	defer ig.compactMu.Unlock()

	ig.mu.Lock()
	sdb := ig.sealed
	view := ig.ws.Snapshot()
	delSealed := ig.delSealed
	delWS := ig.delWS
	ig.mu.Unlock()

	// Sealed side: evaluate the conjunction over the frozen columns.
	var match *bitmap.Bitmap
	for _, f := range filters {
		col, err := sdb.Fact.Column(f.Col)
		if err != nil {
			return 0, err
		}
		vals := col.DecodeAll(nil, nil)
		m := bitmap.New(len(vals))
		for i, v := range vals {
			if f.Pred.Match(v) {
				m.Set(i)
			}
		}
		if match == nil {
			match = m
		} else {
			match.And(m)
		}
	}
	if delSealed != nil {
		match.AndNot(delSealed) // only newly dead rows are logged/counted
	}
	sealedHits := match.Count()

	// Write-store side: batch-at-a-time with zone-map pruning, collecting
	// global row indexes.
	var wsIdx []int64
	next := view.Lo()
	var scanErr error
	view.ForEach(func(b *delta.Batch, lo, hi int) bool {
		base := next - int64(lo)
		next += int64(hi - lo)
		for _, f := range filters {
			if mn, mx, ok := b.MinMax(f.Col); ok && !f.Pred.MayMatch(mn, mx) {
				return true
			}
		}
		fvals := make([][]int32, len(filters))
		for i, f := range filters {
			if fvals[i] = b.Col(f.Col); fvals[i] == nil {
				scanErr = fmt.Errorf("exec: delta batch lacks column %q", f.Col)
				return false
			}
		}
	row:
		for r := lo; r < hi; r++ {
			for i := range filters {
				if !filters[i].Pred.Match(fvals[i][r]) {
					continue row
				}
			}
			g := base + int64(r)
			if delWS != nil && g < int64(delWS.Len()) && delWS.Get(int(g)) {
				continue
			}
			wsIdx = append(wsIdx, g)
		}
		return true
	})
	if scanErr != nil {
		return 0, scanErr
	}
	if sealedHits == 0 && len(wsIdx) == 0 {
		return 0, nil
	}

	var err error
	ig.mu.Lock()
	var lsn uint64
	if l := ig.wal; l != nil {
		rec := wal.Delete{}
		match.ForEach(func(p int) { rec.Sealed = append(rec.Sealed, uint32(p)) })
		for _, g := range wsIdx {
			rec.WS = append(rec.WS, g-ig.walBase)
		}
		lsn, err = l.Append(rec)
		if err != nil {
			ig.mu.Unlock()
			ig.setErr(err)
			return 0, err
		}
	}
	if sealedHits > 0 {
		ns := bitmap.New(sdb.numRows)
		if ig.delSealed != nil {
			ns = ig.delSealed.Clone()
		}
		ns.Or(match)
		ig.delSealed = ns
		ig.tombSealed += int64(sealedHits)
	}
	if len(wsIdx) > 0 {
		n := int(ig.ws.Total())
		var nw *bitmap.Bitmap
		if ig.delWS != nil {
			nw = ig.delWS.Grow(n)
		} else {
			nw = bitmap.New(n)
		}
		for _, g := range wsIdx {
			nw.Set(int(g))
		}
		ig.delWS = nw
		ig.tombWS += int64(len(wsIdx))
	}
	ig.deletes.Add(1)
	ig.mu.Unlock()
	if l := ig.wal; l != nil {
		if err := l.Commit(lsn); err != nil {
			ig.setErr(err)
			return 0, err
		}
	}
	return int64(sealedHits) + int64(len(wsIdx)), nil
}

// WALStats reports the durability log's counters plus whether it is on at
// all; the zero value means no WAL (or no write store).
type WALStats struct {
	Enabled bool `json:"enabled"`
	wal.Stats
}

// WALStats returns the write-ahead log's counters.
func (db *DB) WALStats() WALStats {
	ig := db.ingest
	if ig == nil || ig.wal == nil {
		return WALStats{}
	}
	return WALStats{Enabled: true, Stats: ig.wal.Stats()}
}

// CloseWAL syncs and closes the durability log, if one is attached. Call
// after CloseDelta/FlushDelta on shutdown.
func (db *DB) CloseWAL() error {
	ig := db.ingest
	if ig == nil {
		return nil
	}
	ig.mu.Lock()
	l := ig.wal
	ig.mu.Unlock()
	if l == nil {
		return nil
	}
	return l.Close()
}
