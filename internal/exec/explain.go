package exec

import (
	"fmt"
	"strings"

	"repro/internal/ssb"
)

// Explain renders the physical plan the column executor would run for q
// under cfg: the join phase-1 outcomes (between-predicate rewriting vs hash
// fallback), the probe order over fact columns, and the phase-3 extraction
// strategy per group column. It performs phase 1 for real (dimension
// predicate evaluation) but touches no fact data.
func (db *DB) Explain(q *ssb.Query, cfg Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Query %s on column store [%s]\n", q.ID, cfg.Code())
	if !cfg.LateMat {
		cols := q.NeededFactColumns()
		fmt.Fprintf(&b, "  EARLY MATERIALIZATION: construct %d-column tuples for all %d rows first\n",
			len(cols), db.numRows)
		fmt.Fprintf(&b, "    fact columns read in full: %s\n", strings.Join(cols, ", "))
		fmt.Fprintf(&b, "  then row-at-a-time: filters -> dimension hash probes -> hash aggregation\n")
		return b.String()
	}

	probes := db.planProbes(q, cfg, nil)
	if cfg.FusedActive() {
		if db.fusedGroupSpace(q) > denseLimit {
			fmt.Fprintf(&b, "  FUSED disabled for this query: composite group space exceeds the dense limit; per-probe hash aggregation runs instead\n")
		} else {
			fmt.Fprintf(&b, "  FUSED: one block-at-a-time pass over %d workers; probes, extraction and dense aggregation run per 64K block\n",
				db.fusedWorkers(q, cfg))
		}
	}
	fmt.Fprintf(&b, "  phase 2 probe order (pipelined, candidates shrink left to right):\n")
	for i, p := range probes {
		switch {
		case p.isPred && p.sortedFirst:
			fmt.Fprintf(&b, "    %d. %-14s BETWEEN %d AND %d   (sorted column: positions form one range)\n",
				i+1, p.col.Name, p.pred.A, p.pred.B)
		case p.isPred:
			fmt.Fprintf(&b, "    %d. %-14s %s", i+1, p.col.Name, predString(p))
			b.WriteString("\n")
		case p.dense != nil:
			fmt.Fprintf(&b, "    %d. %-14s dense-bitmap probe against %d dimension keys in [%d, %d]\n",
				i+1, p.col.Name, p.keyCount(), p.setMin, p.setMax)
		default:
			fmt.Fprintf(&b, "    %d. %-14s hash probe against %d dimension keys (no contiguous range)\n",
				i+1, p.col.Name, p.keyCount())
		}
	}
	if len(probes) == 0 {
		fmt.Fprintf(&b, "    (none: full table)\n")
	}

	if len(q.GroupBy) > 0 {
		fmt.Fprintf(&b, "  phase 3 group extraction at final positions:\n")
		for _, g := range q.GroupBy {
			switch {
			case !cfg.InvisibleJoin:
				fmt.Fprintf(&b, "    %s.%s via hash table (late-materialized join)\n", g.Dim, g.Col)
			case g.Dim == ssb.DimDate && cfg.FusedActive():
				fmt.Fprintf(&b, "    %s.%s via dense datekey->position array (no per-row hash)\n", g.Dim, g.Col)
			case g.Dim == ssb.DimDate:
				fmt.Fprintf(&b, "    %s.%s via datekey lookup (key is not a position: full join)\n", g.Dim, g.Col)
			default:
				fmt.Fprintf(&b, "    %s.%s via direct array extraction (keys reassigned to positions)\n", g.Dim, g.Col)
			}
		}
	}
	specs := q.AggSpecs()
	rendered := make([]string, len(specs))
	for i, s := range specs {
		rendered[i] = s.String()
	}
	fmt.Fprintf(&b, "  aggregate: %s\n", strings.Join(rendered, ", "))
	return b.String()
}

func predString(p *factProbe) string {
	switch {
	case p.pred.Op.String() == "between":
		return fmt.Sprintf("BETWEEN %d AND %d", p.pred.A, p.pred.B)
	case len(p.pred.Set) > 0:
		return fmt.Sprintf("IN (%d values)", len(p.pred.Set))
	default:
		return fmt.Sprintf("%s %d", p.pred.Op, p.pred.A)
	}
}
