package exec

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/iosim"
	"repro/internal/ssb"
)

// leakCheckConfigs are the column configurations the pin-leak audit runs:
// every block-acquiring pipeline the engine has that can serve compressed
// (segment-backed) storage — per-probe, tuple-at-a-time iteration, the
// fused morsel pipeline serial and parallel, parallel per-probe scans, and
// early materialization.
func leakCheckConfigs() []Config {
	parProbe := FullOpt
	parProbe.Workers = 4
	fused1, fused8 := FusedOpt, FusedOpt
	fused1.Workers, fused8.Workers = 1, 8
	return []Config{
		FullOpt,
		parProbe,
		{BlockIter: false, InvisibleJoin: true, Compression: true, LateMat: true},
		fused1,
		fused8,
		{BlockIter: true, InvisibleJoin: true, Compression: true, LateMat: false},
	}
}

// TestPinLeakAllEngines runs every engine's full query suite (the thirteen
// SSBM queries plus a band of random ad-hoc plans) over a segment-backed
// DB under an eviction-forcing budget and asserts the pool reports zero
// pinned frames after every single run: each pipeline releases every block
// it acquires on every path, including min/max short-circuits, empty
// selections, and covered-block skips.
func TestPinLeakAllEngines(t *testing.T) {
	data := ssb.Generate(0.01)
	dbc := BuildDB(data, true)
	segDB, store := segBackedDB(t, dbc, data.SF, 256<<10)

	plans := ssb.Queries()
	for i := 0; i < 20; i++ {
		plans = append(plans, ssb.RandQuery(diffSeedBase+int64(i)))
	}
	for _, cfg := range leakCheckConfigs() {
		for _, q := range plans {
			segDB.Run(q, cfg, nil)
			if n := store.Pool().PinnedFrames(); n != 0 {
				t.Fatalf("config %s workers=%d query %s: %d frames still pinned after run",
					cfg.Code(), cfg.Workers, q.ID, n)
			}
		}
	}
}

// TestCancellationReleasesPins cancels queries before and during execution
// and asserts (a) RunCtx surfaces ctx.Err, (b) the pool holds zero pinned
// frames afterwards, and (c) a query that happens to win the race and
// complete anyway is still bit-identical to the reference.
func TestCancellationReleasesPins(t *testing.T) {
	data := ssb.Generate(0.01)
	dbc := BuildDB(data, true)
	segDB, store := segBackedDB(t, dbc, data.SF, 256<<10)

	for _, cfg := range leakCheckConfigs() {
		// Already-canceled context: every pipeline must bail without a
		// result.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		for _, q := range ssb.Queries() {
			if res, err := segDB.RunCtx(ctx, q, cfg, nil); err == nil {
				t.Fatalf("config %s query %s: no error from pre-canceled context (res=%v)", cfg.Code(), q.ID, res != nil)
			}
			if n := store.Pool().PinnedFrames(); n != 0 {
				t.Fatalf("config %s query %s: %d pinned frames after canceled run", cfg.Code(), q.ID, n)
			}
		}
	}

	// Mid-flight cancellation: race a cancel against real execution. Either
	// outcome is legal; pinned frames and result integrity are not
	// negotiable.
	q := ssb.QueryByID("3.1")
	want := ssb.Reference(data, q)
	for i := 0; i < 30; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
			cancel()
		}()
		res, err := segDB.RunCtx(ctx, q, FusedOpt, nil)
		<-done
		if err == nil && !res.Equal(want) {
			t.Fatalf("iteration %d: uncanceled run diverges from reference:\n%s", i, want.Diff(res))
		}
		if err != nil && res != nil {
			t.Fatalf("iteration %d: canceled run returned both a result and %v", i, err)
		}
		if n := store.Pool().PinnedFrames(); n != 0 {
			t.Fatalf("iteration %d: %d pinned frames after cancellation race", i, n)
		}
	}
}

// TestConcurrentRunGoldenEquivalence executes the same query suite from
// two goroutines sharing one DB (in-memory and segment-backed), each call
// owning its iosim.Stats, and requires every result and every per-query
// I/O account to be bit-identical to a serial baseline: concurrent db.Run
// calls share scratch pools and the buffer pool but never interleave
// per-query state. Run under -race in CI.
func TestConcurrentRunGoldenEquivalence(t *testing.T) {
	data := ssb.Generate(0.01)
	dbc := BuildDB(data, true)
	segDB, store := segBackedDB(t, dbc, data.SF, 256<<10)

	cfg := FusedOpt
	cfg.Workers = 4

	plans := ssb.Queries()
	for i := 0; i < 12; i++ {
		plans = append(plans, ssb.RandQuery(diffSeedBase+100+int64(i)))
	}

	for _, db := range []*DB{dbc, segDB} {
		// Serial baseline: result + logical I/O per plan.
		baseRes := make([]*ssb.Result, len(plans))
		baseIO := make([]iosim.Stats, len(plans))
		for i, q := range plans {
			baseRes[i] = db.Run(q, cfg, &baseIO[i])
		}

		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				// Opposite orders maximize distinct-query interleaving.
				for i := range plans {
					pi := i
					if g == 1 {
						pi = len(plans) - 1 - i
					}
					q := plans[pi]
					var st iosim.Stats
					res := db.Run(q, cfg, &st)
					if !res.Equal(baseRes[pi]) {
						t.Errorf("goroutine %d plan %s: concurrent result diverges from serial\n%s",
							g, q.ID, baseRes[pi].Diff(res))
						return
					}
					if st != baseIO[pi] {
						t.Errorf("goroutine %d plan %s: concurrent I/O %+v differs from serial %+v",
							g, q.ID, st, baseIO[pi])
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if n := store.Pool().PinnedFrames(); n != 0 {
			t.Fatalf("%d pinned frames after concurrent runs", n)
		}
	}
}
