package exec

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/compress"
	"repro/internal/iosim"
	"repro/internal/segstore"
	"repro/internal/ssb"
)

// earlyMatCfg is the early-materialization configuration used by the ingest
// tests (the row-at-a-time engine over compressed storage).
var earlyMatCfg = Config{BlockIter: true, Compression: true}

// ingestEngines is the engine matrix every epoch is checked across.
func ingestEngines() []struct {
	label string
	cfg   Config
} {
	w1, w8 := FusedOpt, FusedOpt
	w1.Workers, w8.Workers = 1, 8
	nkFull, nkW8, nkEM := FullOpt, w8, earlyMatCfg
	nkFull.NoKernels, nkW8.NoKernels, nkEM.NoKernels = true, true, true
	return []struct {
		label string
		cfg   Config
	}{
		{"per-probe", FullOpt},
		{"fused w1", w1},
		{"fused w8", w8},
		{"early-mat", earlyMatCfg},
		{"per-probe kernels-off", nkFull},
		{"fused w8 kernels-off", nkW8},
		{"early-mat kernels-off", nkEM},
	}
}

// TestIngestDifferential is the write-path differential harness: seeded
// random queries interleave with seeded insert batches, value-predicate
// deletes, and tuple-mover passes, and at every epoch each engine —
// in-memory and segment-backed, per-probe, fused at 1 and 8 workers,
// early-materialized — must agree bit-for-bit with the brute-force
// reference rebuilt from scratch over the base dataset plus every batch
// inserted (and every row deleted) so far. Rounds are sized to cover the
// interesting frontiers: queries answered purely from the write store, a
// compaction that tops the partial tail block up to 64K rows and seals
// whole blocks, epochs mixing sealed-and-delta, deletes landing before and
// after a seal (so tombstones are both purged by the mover and masked on
// the frozen side), and a final flush that leaves a partial tail again.
func TestIngestDifferential(t *testing.T) {
	data := ssb.Generate(0.005)
	refData := ssb.Generate(0.005) // independent copy: the rebuilt-from-scratch oracle

	mem := BuildDB(data, true)
	segDB, store := segBackedDB(t, mem, data.SF, 0)
	for _, db := range []*DB{mem, segDB} {
		if err := db.EnableDelta(0); err != nil {
			t.Fatalf("EnableDelta: %v", err)
		}
	}
	shape, err := mem.BatchShape()
	if err != nil {
		t.Fatalf("BatchShape: %v", err)
	}

	// applyDelete drives the same conjunction through both engines and the
	// oracle; all three must tombstone/remove the same number of rows.
	applyDelete := func(ri int, filters []ssb.FactFilter) {
		t.Helper()
		want := refData.DeleteWhere(filters)
		for _, eng := range []struct {
			label string
			db    *DB
		}{{"mem", mem}, {"seg", segDB}} {
			got, err := eng.db.Delete(filters)
			if err != nil {
				t.Fatalf("round %d: Delete(%s): %v", ri, eng.label, err)
			}
			if got != want {
				t.Fatalf("round %d: Delete(%s) tombstoned %d rows, oracle removed %d", ri, eng.label, got, want)
			}
		}
	}

	rounds := []struct {
		insert  int
		compact bool
		preDel  []ssb.FactFilter // applied after insert, before any compaction
		postDel []ssb.FactFilter // applied after compaction
	}{
		// Round 0: small delta; compaction is a no-op (< 64K pending). The
		// post-delete spans base sealed rows AND live delta rows.
		{3000, true, nil, []ssb.FactFilter{{Col: "quantity", Pred: compress.Between(48, 50)}}},
		// Round 1: larger delta served straight from the WS.
		{40000, false, nil, nil},
		// Round 2: delete BEFORE a real seal — the mover must purge the WS
		// tombstones while topping the tail block up to 64K.
		{25000, true, []ssb.FactFilter{{Col: "tax", Pred: compress.Eq(7)}}, nil},
		// Round 3: tiny batch on a sealed store; zero-match delete is a no-op.
		{7, false, nil, []ssb.FactFilter{{Col: "orderkey", Pred: compress.Eq(-1)}}},
		// Round 4: sub-block round; multi-predicate conjunction after the seal.
		{10000, true, nil, []ssb.FactFilter{
			{Col: "discount", Pred: compress.Eq(0)},
			{Col: "quantity", Pred: compress.Le(10)},
		}},
	}
	const queriesPerRound = 6
	compacted := false
	for ri, round := range rounds {
		batch, err := ssb.RandBatch(int64(1000+ri), round.insert, shape)
		if err != nil {
			t.Fatalf("round %d: RandBatch: %v", ri, err)
		}
		refData.AppendBatch(batch)
		for _, db := range []*DB{mem, segDB} {
			if _, err := db.Insert(batch); err != nil {
				t.Fatalf("round %d: Insert: %v", ri, err)
			}
		}
		if round.preDel != nil {
			applyDelete(ri, round.preDel)
		}
		if round.compact {
			nMem, err := mem.CompactNow()
			if err != nil {
				t.Fatalf("round %d: CompactNow(mem): %v", ri, err)
			}
			nSeg, err := segDB.CompactNow()
			if err != nil {
				t.Fatalf("round %d: CompactNow(seg): %v", ri, err)
			}
			if nMem != nSeg {
				t.Fatalf("round %d: compaction sealed %d rows in-memory but %d segment-backed", ri, nMem, nSeg)
			}
			if nMem > 0 {
				compacted = true
			}
		}
		if round.postDel != nil {
			applyDelete(ri, round.postDel)
		}
		// Physical NumRows includes masked (tombstoned) sealed rows, so the
		// row-count invariant is checked through the visibility layer.
		countQ := &ssb.Query{ID: fmt.Sprintf("count-%d", ri), Aggs: []ssb.AggSpec{{Func: ssb.FuncCount}}}
		if got, want := mem.Run(countQ, FullOpt, nil).Rows[0].AggValues()[0], int64(refData.NumLineorders()); got != want {
			t.Fatalf("round %d: visible count(*) %d, want %d", ri, got, want)
		}

		queries := make([]*ssb.Query, 0, queriesPerRound+2)
		for qi := 0; qi < queriesPerRound; qi++ {
			queries = append(queries, ssb.RandQuery(int64(9000+100*ri+qi)))
		}
		// Ungrouped MIN/MAX exercises the hidden-count merge; the
		// impossible filter exercises the empty-sealed/empty-delta paths.
		queries = append(queries,
			&ssb.Query{ID: fmt.Sprintf("minmax-%d", ri), Aggs: []ssb.AggSpec{
				{Func: ssb.FuncMin, Expr: ssb.AggExpr{ColA: "revenue", Op: '-', ColB: "supplycost"}},
				{Func: ssb.FuncMax, Expr: ssb.AggExpr{ColA: "quantity"}},
			}},
			&ssb.Query{ID: fmt.Sprintf("empty-%d", ri), Aggs: []ssb.AggSpec{
				{Func: ssb.FuncMin, Expr: ssb.AggExpr{ColA: "revenue"}},
				{Func: ssb.FuncCount},
			}, DimFilters: []ssb.DimFilter{
				{Dim: ssb.DimCustomer, Col: "nation", Op: ssb.QueryByID("3.2").DimFilters[0].Op, StrA: "NO SUCH NATION"},
			}})

		for _, q := range queries {
			want := ssb.Reference(refData, q)
			var stW1, stW8, stSeg iosim.Stats
			for _, eng := range ingestEngines() {
				var st *iosim.Stats
				switch eng.label {
				case "fused w1":
					st = &stW1
				case "fused w8":
					st = &stW8
				}
				if got := mem.Run(q, eng.cfg, st); !got.Equal(want) {
					t.Errorf("round %d %s [mem %s]: diverges from rebuilt reference\nSQL: %s\n%s",
						ri, q.ID, eng.label, q.SQL(), want.Diff(got))
				}
				st = nil
				if eng.label == "fused w8" {
					st = &stSeg
				}
				if got := segDB.Run(q, eng.cfg, st); !got.Equal(want) {
					t.Errorf("round %d %s [seg %s]: diverges from rebuilt reference\nSQL: %s\n%s",
						ri, q.ID, eng.label, q.SQL(), want.Diff(got))
				}
			}
			if stW1 != stW8 {
				t.Errorf("round %d %s: fused I/O accounting depends on worker count with a live delta: %+v vs %+v",
					ri, q.ID, stW1, stW8)
			}
			if stSeg != stW8 {
				t.Errorf("round %d %s: segment-backed fused logical I/O %+v differs from in-memory %+v",
					ri, q.ID, stSeg, stW8)
			}
		}
	}
	if !compacted {
		t.Fatal("no round actually compacted — the test never exercised the tuple mover")
	}
	if ps := store.Pool().Stats(); ps.Appends == 0 {
		t.Error("segment store recorded no append passes")
	}

	// Drain everything (leaving a partial tail block again) and re-check a
	// fixed query set with an empty write store.
	for _, db := range []*DB{mem, segDB} {
		if err := db.FlushDelta(); err != nil {
			t.Fatalf("FlushDelta: %v", err)
		}
		if ds := db.DeltaStats(); ds.PendingRows != 0 {
			t.Fatalf("FlushDelta left %d pending rows", ds.PendingRows)
		}
	}
	for _, q := range ssb.Queries() {
		want := ssb.Reference(refData, q)
		for _, eng := range ingestEngines() {
			if got := mem.Run(q, eng.cfg, nil); !got.Equal(want) {
				t.Errorf("post-flush Q%s [mem %s]: diverges\n%s", q.ID, eng.label, want.Diff(got))
			}
			if got := segDB.Run(q, eng.cfg, nil); !got.Equal(want) {
				t.Errorf("post-flush Q%s [seg %s]: diverges\n%s", q.ID, eng.label, want.Diff(got))
			}
		}
	}
	if p := store.Pool().PinnedFrames(); p != 0 {
		t.Errorf("%d frames still pinned after the differential run", p)
	}
}

// TestIngestColdEquivalence pins the acceptance criterion that
// post-compaction segment scans are bit-identical to the same data loaded
// cold: after inserts flush into the segment file, (a) the live store, (b)
// a cold reopen of the mutated file, and (c) a segment file freshly written
// from a from-scratch build over base+inserts must all produce identical
// results across the engine matrix.
func TestIngestColdEquivalence(t *testing.T) {
	data := ssb.Generate(0.005)
	refData := ssb.Generate(0.005)

	mem := BuildDB(data, true)
	segDB, store := segBackedDB(t, mem, data.SF, 0)
	if err := segDB.EnableDelta(0); err != nil {
		t.Fatalf("EnableDelta: %v", err)
	}
	shape, err := segDB.BatchShape()
	if err != nil {
		t.Fatalf("BatchShape: %v", err)
	}
	batch, err := ssb.RandBatch(77, 70000, shape)
	if err != nil {
		t.Fatalf("RandBatch: %v", err)
	}
	refData.AppendBatch(batch)
	if _, err := segDB.Insert(batch); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := segDB.FlushDelta(); err != nil {
		t.Fatalf("FlushDelta: %v", err)
	}

	// Cold reopen of the appended file.
	coldDB, coldStore := reopen(t, store.Path())
	// From-scratch build over the same logical rows, through a fresh file.
	// BuildDB requires the generator's physical sort order, which appends
	// broke; the from-scratch path re-sorts first (order never changes
	// aggregate results).
	refData.SortLineorders()
	rebuilt := BuildDB(refData, true)
	scratchDB, _ := segBackedDB(t, rebuilt, refData.SF, 0)

	if got, want := coldDB.NumRows(), refData.NumLineorders(); got != want {
		t.Fatalf("cold reopen has %d rows, want %d", got, want)
	}
	queries := ssb.Queries()
	for qi := 0; qi < 8; qi++ {
		queries = append(queries, ssb.RandQuery(int64(5000+qi)))
	}
	for _, q := range queries {
		want := ssb.Reference(refData, q)
		for _, eng := range ingestEngines() {
			for label, db := range map[string]*DB{
				"appended-live": segDB, "appended-cold": coldDB, "rebuilt-scratch": scratchDB,
			} {
				if got := db.Run(q, eng.cfg, nil); !got.Equal(want) {
					t.Errorf("Q%s [%s %s]: diverges from rebuilt reference\n%s",
						q.ID, label, eng.label, want.Diff(got))
				}
			}
		}
	}
	if p := coldStore.Pool().PinnedFrames(); p != 0 {
		t.Errorf("%d frames pinned on the cold store after the run", p)
	}
}

// reopen opens the segment file at path as a fresh store + DB.
func reopen(t *testing.T, path string) (*DB, *segstore.Store) {
	t.Helper()
	st, err := segstore.Open(path, 0)
	if err != nil {
		t.Fatalf("reopen %s: %v", path, err)
	}
	t.Cleanup(func() { st.Close() })
	db, err := OpenSegmentDB(st)
	if err != nil {
		t.Fatalf("OpenSegmentDB after reopen: %v", err)
	}
	return db, st
}

// TestIngestEpochSnapshot pins the visibility rule at the API level: a
// query resolves its snapshot when it starts, so results reflect exactly
// the inserts accepted before it — and the epoch counter tracks them.
func TestIngestEpochSnapshot(t *testing.T) {
	data := ssb.Generate(0.002)
	db := BuildDB(data, true)
	if err := db.EnableDelta(0); err != nil {
		t.Fatalf("EnableDelta: %v", err)
	}
	if got := db.Epoch(); got != 0 {
		t.Fatalf("fresh DB epoch %d, want 0", got)
	}
	countQ := &ssb.Query{ID: "count", Aggs: []ssb.AggSpec{{Func: ssb.FuncCount}}}
	base := db.Run(countQ, FusedOpt, nil).Rows[0].Agg
	if int(base) != data.NumLineorders() {
		t.Fatalf("base count %d, want %d", base, data.NumLineorders())
	}
	shape, _ := db.BatchShape()
	batch, err := ssb.RandBatch(5, 1234, shape)
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := db.Insert(batch)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1234 {
		t.Fatalf("epoch after first insert %d, want 1234", epoch)
	}
	if got := db.Run(countQ, FusedOpt, nil).Rows[0].Agg; got != base+1234 {
		t.Fatalf("count after insert %d, want %d", got, base+1234)
	}
	// The pre-insert result was computed against the old snapshot and must
	// not have been affected retroactively (it is a value, but re-assert
	// the counter relationship for the compacted state too).
	if _, err := db.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if got := db.Run(countQ, FusedOpt, nil).Rows[0].Agg; got != base+1234 {
		t.Fatalf("count after compaction %d, want %d (compaction must not change visibility)", got, base+1234)
	}
	if got := db.Epoch(); got != 1234 {
		t.Fatalf("epoch after compaction %d, want 1234 (compaction moves rows, not the data version)", got)
	}
}

// TestIngestConcurrentSnapshots runs inserters, queriers and the background
// tuple mover together against a segment-backed store: every observed
// count(*) must be the base plus a whole number of batches (inserts are
// atomic, snapshots are consistent) and monotone per reader, regardless of
// how compaction interleaves. Run under -race in CI.
func TestIngestConcurrentSnapshots(t *testing.T) {
	data := ssb.Generate(0.002)
	mem := BuildDB(data, true)
	segDB, store := segBackedDB(t, mem, data.SF, 0)
	if err := segDB.EnableDelta(0); err != nil {
		t.Fatalf("EnableDelta: %v", err)
	}
	segDB.StartCompactor()
	shape, _ := segDB.BatchShape()

	const inserters = 2
	const batches = 8
	const batchRows = 5000
	base := int64(data.NumLineorders())
	countQ := &ssb.Query{ID: "count", Aggs: []ssb.AggSpec{{Func: ssb.FuncCount}}}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 16)
	for i := 0; i < inserters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch, err := ssb.RandBatch(int64(i*1000+b), batchRows, shape)
				if err != nil {
					errCh <- err
					return
				}
				if _, err := segDB.Insert(batch); err != nil {
					errCh <- err
					return
				}
			}
		}(i)
	}
	var rwg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			last := base
			cfg := FusedOpt
			cfg.Workers = 1 + r
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := segDB.Run(countQ, cfg, nil).Rows[0].Agg
				if got < last {
					errCh <- fmt.Errorf("reader %d: count went backwards (%d -> %d)", r, last, got)
					return
				}
				if (got-base)%batchRows != 0 {
					errCh <- fmt.Errorf("reader %d: count %d is not base+k*%d — torn snapshot", r, got, batchRows)
					return
				}
				last = got
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if err := segDB.FlushDelta(); err != nil {
		t.Fatalf("FlushDelta: %v", err)
	}
	segDB.CloseDelta()
	want := base + inserters*batches*batchRows
	if got := segDB.Run(countQ, FusedOpt, nil).Rows[0].Agg; got != want {
		t.Fatalf("final count %d, want %d", got, want)
	}
	if ds := segDB.DeltaStats(); ds.Err != "" {
		t.Fatalf("tuple mover recorded error: %s", ds.Err)
	}
	if p := store.Pool().PinnedFrames(); p != 0 {
		t.Errorf("%d frames still pinned after concurrent ingest run", p)
	}
}

// TestDeleteConcurrentSnapshots races deletes against inserters, count(*)
// readers, and the background tuple mover. Every insert batch carries one
// unique marker orderkey, and a deleter tombstones every second acked
// batch while compaction purges and re-seals underneath, so the snapshot
// invariants under test are: (a) global counts only ever move by whole
// batches — inserts and deletes are atomic to readers; (b) a per-key count
// is always 0 or the full batch, never a torn prefix. Run under -race in
// CI.
func TestDeleteConcurrentSnapshots(t *testing.T) {
	data := ssb.Generate(0.002)
	mem := BuildDB(data, true)
	segDB, store := segBackedDB(t, mem, data.SF, 0)
	if err := segDB.EnableDelta(0); err != nil {
		t.Fatalf("EnableDelta: %v", err)
	}
	segDB.StartCompactor()
	shape, _ := segDB.BatchShape()

	const inserters = 2
	const batches = 6
	const batchRows = 4000
	base := int64(data.NumLineorders())
	keyFor := func(i, b int) int32 { return 1_600_000_000 + int32(i*100+b) }
	countQ := &ssb.Query{ID: "count", Aggs: []ssb.AggSpec{{Func: ssb.FuncCount}}}
	keyCount := func(key int32, cfg Config) int64 {
		q := &ssb.Query{
			ID:          fmt.Sprintf("key-%d", key),
			Aggs:        []ssb.AggSpec{{Func: ssb.FuncCount}},
			FactFilters: []ssb.FactFilter{{Col: "orderkey", Pred: compress.Eq(key)}},
		}
		return segDB.Run(q, cfg, nil).Rows[0].Agg
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 16)
	acked := make(chan int32, inserters*batches)
	for i := 0; i < inserters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch, err := ssb.RandBatch(int64(i*1000+b), batchRows, shape)
				if err != nil {
					errCh <- err
					return
				}
				key := keyFor(i, b)
				for r := range batch.OrderKey {
					batch.OrderKey[r] = key
				}
				if _, err := segDB.Insert(batch); err != nil {
					errCh <- err
					return
				}
				acked <- key
			}
		}(i)
	}
	var deleted []int32
	var dwg sync.WaitGroup
	dwg.Add(1)
	go func() {
		defer dwg.Done()
		n := 0
		for key := range acked {
			n++
			if n%2 != 0 {
				continue
			}
			got, err := segDB.Delete([]ssb.FactFilter{{Col: "orderkey", Pred: compress.Eq(key)}})
			if err != nil {
				errCh <- err
				return
			}
			if got != batchRows {
				errCh <- fmt.Errorf("delete of acked key %d tombstoned %d rows, want %d", key, got, batchRows)
				return
			}
			deleted = append(deleted, key)
		}
	}()
	var rwg sync.WaitGroup
	rwg.Add(2)
	go func() { // whole-batch atomicity of the global count
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			got := segDB.Run(countQ, FusedOpt, nil).Rows[0].Agg
			if d := got - base; d < 0 || d%batchRows != 0 {
				errCh <- fmt.Errorf("count %d is not base+k*%d — a reader saw a torn insert or delete", got, batchRows)
				return
			}
		}
	}()
	go func() { // per-key all-or-nothing visibility
		defer rwg.Done()
		for b := 0; ; b++ {
			select {
			case <-stop:
				return
			default:
			}
			if got := keyCount(keyFor(b%inserters, b%batches), FullOpt); got != 0 && got != batchRows {
				errCh <- fmt.Errorf("key %d count %d — torn per-key visibility, want 0 or %d",
					keyFor(b%inserters, b%batches), got, batchRows)
				return
			}
		}
	}()
	wg.Wait()
	close(acked)
	dwg.Wait()
	close(stop)
	rwg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if err := segDB.FlushDelta(); err != nil {
		t.Fatalf("FlushDelta: %v", err)
	}
	segDB.CloseDelta()
	want := base + int64(inserters*batches-len(deleted))*batchRows
	if got := segDB.Run(countQ, FusedOpt, nil).Rows[0].Agg; got != want {
		t.Fatalf("final count %d, want %d (%d batches deleted)", got, want, len(deleted))
	}
	isDeleted := map[int32]bool{}
	for _, key := range deleted {
		isDeleted[key] = true
	}
	for i := 0; i < inserters; i++ {
		for b := 0; b < batches; b++ {
			key := keyFor(i, b)
			want := int64(batchRows)
			if isDeleted[key] {
				want = 0
			}
			for _, eng := range ingestEngines() {
				if got := keyCount(key, eng.cfg); got != want {
					t.Errorf("key %d [%s]: final count %d, want %d", key, eng.label, got, want)
				}
			}
		}
	}
	if ds := segDB.DeltaStats(); ds.Err != "" {
		t.Fatalf("tuple mover recorded error: %s", ds.Err)
	}
	if p := store.Pool().PinnedFrames(); p != 0 {
		t.Errorf("%d frames still pinned after concurrent delete run", p)
	}
}
