package exec

import (
	"strconv"

	"repro/internal/bitmap"
	"repro/internal/colstore"
	"repro/internal/compress"
	"repro/internal/iosim"
	"repro/internal/ssb"
	"repro/internal/vector"
)

// DenormMode selects how dimension attributes are stored in the
// pre-joined (denormalized) fact table of Figure 8.
type DenormMode uint8

const (
	// DenormNoC stores dimension attributes as unmodified strings
	// ("PJ, No C").
	DenormNoC DenormMode = iota
	// DenormIntC dictionary-encodes dimension attributes into integers
	// but applies no further compression ("PJ, Int C").
	DenormIntC
	// DenormMaxC dictionary-encodes and then compresses every column as
	// much as possible ("PJ, Max C").
	DenormMaxC
)

// String returns the Figure 8 label for the mode.
func (m DenormMode) String() string {
	switch m {
	case DenormNoC:
		return "PJ, No C"
	case DenormIntC:
		return "PJ, Int C"
	default:
		return "PJ, Max C"
	}
}

// strColumn is a column of raw strings, used only by DenormNoC: predicate
// application must compare full strings per row, which is the cost the
// paper measures ("predicate application is performed on the actual string
// attribute in the fact table").
type strColumn struct {
	vals  []string
	bytes int64
}

func newStrColumn(vals []string) *strColumn {
	c := &strColumn{vals: vals}
	for _, v := range vals {
		c.bytes += int64(len(v)) + 2
	}
	return c
}

func (c *strColumn) filter(match func(string) bool, st *iosim.Stats) *vector.Positions {
	st.Read(c.bytes)
	bm := bitmap.New(len(c.vals))
	for i, v := range c.vals {
		if match(v) {
			bm.Set(i)
		}
	}
	return vector.NewBitmapPositions(bm)
}

func (c *strColumn) filterAt(match func(string) bool, cand *vector.Positions, st *iosim.Stats) *vector.Positions {
	n := len(c.vals)
	if n > 0 {
		st.Read(c.bytes * int64(cand.Len()) / int64(n))
	}
	bm := bitmap.New(n)
	cand.ForEach(func(p int32) {
		if match(c.vals[p]) {
			bm.Set(int(p))
		}
	})
	return vector.NewBitmapPositions(bm)
}

// DenormDB is the single pre-joined table: for every fact row, the
// dimension attributes the SSBM queries touch are repeated inline, so
// queries run with no joins at all.
type DenormDB struct {
	Mode    DenormMode
	numRows int
	// intCols holds measures, integer date attributes and (for
	// IntC/MaxC) dictionary codes of string attributes.
	intCols map[string]*colstore.Column
	// strCols holds raw string attributes (NoC only).
	strCols map[string]*strColumn
}

// denormStrAttrs lists the inlined string attributes: (column name,
// dimension, dimension column).
var denormStrAttrs = []struct {
	name string
	dim  ssb.Dim
	col  string
}{
	{"c_region", ssb.DimCustomer, "region"},
	{"c_nation", ssb.DimCustomer, "nation"},
	{"c_city", ssb.DimCustomer, "city"},
	{"s_region", ssb.DimSupplier, "region"},
	{"s_nation", ssb.DimSupplier, "nation"},
	{"s_city", ssb.DimSupplier, "city"},
	{"p_mfgr", ssb.DimPart, "mfgr"},
	{"p_category", ssb.DimPart, "category"},
	{"p_brand1", ssb.DimPart, "brand1"},
	{"d_yearmonth", ssb.DimDate, "yearmonth"},
}

// denormIntAttrs lists the inlined integer attributes.
var denormIntAttrs = []struct {
	name string
	col  string
}{
	{"d_year", "year"},
	{"d_yearmonthnum", "yearmonthnum"},
	{"d_weeknuminyear", "weeknuminyear"},
}

// BuildDenorm pre-joins the fact table with all four dimensions (paper
// Section 6.3.3: "the fact table contains all of the values found in the
// dimension table repeated for each fact table record").
func BuildDenorm(d *ssb.Data, mode DenormMode) *DenormDB {
	n := d.NumLineorders()
	db := &DenormDB{
		Mode:    mode,
		numRows: n,
		intCols: map[string]*colstore.Column{},
		strCols: map[string]*strColumn{},
	}
	compressed := mode == DenormMaxC

	dateIdx := d.DateIndex()
	dimRow := func(dim ssb.Dim, i int) int {
		return d.FactDimIndex(dim, i, dateIdx)
	}

	// String attributes.
	for _, a := range denormStrAttrs {
		src := d.DimStrCol(a.dim, a.col)
		vals := make([]string, n)
		for i := 0; i < n; i++ {
			vals[i] = src[dimRow(a.dim, i)]
		}
		if mode == DenormNoC {
			db.strCols[a.name] = newStrColumn(vals)
			continue
		}
		dict := compress.BuildDict(vals)
		db.intCols[a.name] = colstore.NewColumn(a.name, dict.Encode(vals, nil), dict, colstore.Unsorted, compressed)
	}
	// Integer date attributes.
	for _, a := range denormIntAttrs {
		src := d.DimIntCol(ssb.DimDate, a.col)
		vals := make([]int32, n)
		for i := 0; i < n; i++ {
			vals[i] = src[dimRow(ssb.DimDate, i)]
		}
		db.intCols[a.name] = colstore.NewColumn(a.name, vals, nil, colstore.Unsorted, compressed)
	}
	// Measures. The fact sort order is preserved, so orderdate-adjacent
	// attributes stay compressible under MaxC.
	measures := map[string][]int32{
		"quantity":      d.Line.Quantity,
		"discount":      d.Line.Discount,
		"extendedprice": d.Line.ExtendedPrice,
		"revenue":       d.Line.Revenue,
		"supplycost":    d.Line.SupplyCost,
	}
	sortKind := map[string]colstore.SortKind{"quantity": colstore.SecondarySort, "discount": colstore.SecondarySort}
	for name, vals := range measures {
		db.intCols[name] = colstore.NewColumn(name, vals, nil, sortKind[name], compressed)
	}
	return db
}

// Bytes returns the table's storage footprint, for the Figure 8 size
// discussion.
func (db *DenormDB) Bytes() int64 {
	var b int64
	for _, c := range db.intCols {
		b += c.CompressedBytes()
	}
	for _, c := range db.strCols {
		b += c.bytes
	}
	return b
}

// denormColName maps a dimension filter or group column to its inlined
// column name.
func denormColName(dim ssb.Dim, col string) string {
	switch dim {
	case ssb.DimCustomer:
		return "c_" + col
	case ssb.DimSupplier:
		return "s_" + col
	case ssb.DimPart:
		return "p_" + col
	default:
		return "d_" + col
	}
}

// Supports reports whether every dimension attribute the query touches is
// materialized in the denormalized schema (ad-hoc plans may reference
// attributes the pre-join did not include).
func (db *DenormDB) Supports(q *ssb.Query) bool {
	has := func(dim ssb.Dim, col string) bool {
		name := denormColName(dim, col)
		if _, ok := db.intCols[name]; ok {
			return true
		}
		_, ok := db.strCols[name]
		return ok
	}
	for _, f := range q.DimFilters {
		if !has(f.Dim, f.Col) {
			return false
		}
	}
	for _, g := range q.GroupBy {
		if !has(g.Dim, g.Col) {
			return false
		}
	}
	// Measure columns: only the five SSBM measures are inlined.
	for _, f := range q.FactFilters {
		if _, ok := db.intCols[f.Col]; !ok {
			return false
		}
	}
	for _, s := range q.AggSpecs() {
		for _, c := range s.Expr.Columns() {
			if _, ok := db.intCols[c]; !ok {
				return false
			}
		}
	}
	return true
}

// Run executes an SSBM query against the denormalized table: every
// dimension predicate applies directly to an inlined fact column (twice as
// wide scans, no joins), and group-by attributes are read from the fact
// table as well.
func (db *DenormDB) Run(q *ssb.Query, st *iosim.Stats) *ssb.Result {
	var pos *vector.Positions
	apply := func(f func(cand *vector.Positions) *vector.Positions) {
		if pos != nil && pos.Len() == 0 {
			return
		}
		pos = f(pos)
	}

	// Fact measure filters first (they are the cheapest columns).
	for _, f := range q.FactFilters {
		pred := f.Pred
		col := db.intCols[f.Col]
		apply(func(cand *vector.Positions) *vector.Positions {
			if cand == nil {
				return col.Filter(pred, st)
			}
			return col.FilterAt(pred, cand, st)
		})
	}
	// Dimension predicates, each applied in full against its inlined
	// column (no per-dimension summarization — the paper's stated
	// disadvantage of denormalization for double-predicate queries).
	for _, f := range q.DimFilters {
		name := denormColName(f.Dim, f.Col)
		if sc, ok := db.strCols[name]; ok {
			match := f.MatchStr
			apply(func(cand *vector.Positions) *vector.Positions {
				if cand == nil {
					return sc.filter(match, st)
				}
				return sc.filterAt(match, cand, st)
			})
			continue
		}
		col := db.intCols[name]
		var pred compress.Pred
		if f.IsInt {
			pred = f.IntPred()
		} else {
			pred = col.Dict.EncodePred(f.Op, f.StrA, f.StrB, f.StrSet)
		}
		apply(func(cand *vector.Positions) *vector.Positions {
			if cand == nil {
				return col.Filter(pred, st)
			}
			return col.FilterAt(pred, cand, st)
		})
	}
	if pos == nil {
		pos = vector.NewRangePositions(0, int32(db.numRows))
	}
	if pos.Len() == 0 {
		return emptyResult(q)
	}

	// Aggregate inputs: evaluate every aggregate expression at the final
	// positions.
	specs := q.AggSpecs()
	n := pos.Len()
	values := evalAggValues(specs, true, n, func(name string) []int32 {
		return db.intCols[name].Gather(pos, nil, st)
	})
	if len(q.GroupBy) == 0 {
		cells := make([]int64, len(specs))
		ssb.InitCells(specs, cells)
		for k, s := range specs {
			if values[k] == nil { // COUNT: one per row
				cells[k] += int64(n)
				continue
			}
			for _, v := range values[k] {
				cells[k] = s.Combine(cells[k], v)
			}
		}
		return ssb.NewResult(q.ID, []ssb.ResultRow{ssb.MakeRow(nil, ssb.FinalizeCells(specs, cells, int64(n)))})
	}

	// Group keys come straight from the inlined columns.
	groupKeys := make([][]string, len(q.GroupBy))
	for gi, g := range q.GroupBy {
		name := denormColName(g.Dim, g.Col)
		keys := make([]string, 0, n)
		if sc, ok := db.strCols[name]; ok {
			if db.numRows > 0 {
				st.Read(sc.bytes * int64(pos.Len()) / int64(db.numRows))
			}
			pos.ForEach(func(p int32) { keys = append(keys, sc.vals[p]) })
		} else {
			col := db.intCols[name]
			vals := col.Gather(pos, nil, st)
			for _, v := range vals {
				if col.Dict != nil {
					keys = append(keys, col.Dict.Value(v))
				} else {
					keys = append(keys, strconv.Itoa(int(v)))
				}
			}
		}
		groupKeys[gi] = keys
	}
	type cell struct {
		keys  []string
		cells []int64
	}
	m := map[string]*cell{}
	for r := 0; r < n; r++ {
		ck := ""
		for gi := range groupKeys {
			if gi > 0 {
				ck += "\x00"
			}
			ck += groupKeys[gi][r]
		}
		c, ok := m[ck]
		if !ok {
			keys := make([]string, len(groupKeys))
			for gi := range groupKeys {
				keys[gi] = groupKeys[gi][r]
			}
			c = &cell{keys: keys, cells: make([]int64, len(specs))}
			ssb.InitCells(specs, c.cells)
			m[ck] = c
		}
		for k, s := range specs {
			var v int64
			if values[k] != nil {
				v = values[k][r]
			}
			c.cells[k] = s.Combine(c.cells[k], v)
		}
	}
	rows := make([]ssb.ResultRow, 0, len(m))
	for _, c := range m {
		rows = append(rows, ssb.MakeRow(c.keys, c.cells))
	}
	return ssb.NewResult(q.ID, rows)
}
