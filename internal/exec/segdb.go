package exec

import (
	"fmt"
	"sync"

	"repro/internal/colstore"
	"repro/internal/segstore"
	"repro/internal/ssb"
)

// segTableNames maps each dimension to its stored table name. These match
// the names BuildDB gives the in-memory tables, so a file written from a
// built DB (SaveSegments) opens back into the same physical schema.
var segTableNames = map[ssb.Dim]string{
	ssb.DimCustomer: "customer",
	ssb.DimSupplier: "supplier",
	ssb.DimPart:     "part",
	ssb.DimDate:     "dwdate",
}

// segFactName is the stored fact table name.
const segFactName = "lineorder"

// SaveSegments persists db's physical tables (fact plus all four
// dimensions) to a segment-store file at path. The DB must be a compressed
// build — the segment format exists to ship the compressed physical design,
// and forcing plain storage through it would just inflate the file.
func SaveSegments(path string, sf float64, db *DB) error {
	if !db.Compressed {
		return fmt.Errorf("exec: segment files store the compressed physical design; build the DB with compression")
	}
	tables := []*colstore.Table{db.Fact}
	for _, dim := range []ssb.Dim{ssb.DimCustomer, ssb.DimSupplier, ssb.DimPart, ssb.DimDate} {
		tables = append(tables, db.Dims[dim])
	}
	return segstore.Save(path, sf, tables)
}

// OpenSegmentDB opens a column-store DB over a segment file: every column
// is backed by the store's buffer pool, so executors fault 64K-row
// compressed segments in on demand (and zone-map pruning keeps skipped
// segments off disk entirely) instead of holding whole columns. The date
// join index is the only eagerly decoded column — the date dimension is a
// few thousand rows.
func OpenSegmentDB(store *segstore.Store) (*DB, error) {
	db := &DB{
		Compressed: true,
		Dims:       map[ssb.Dim]*colstore.Table{},
		fusedPool:  &sync.Pool{},
		footCache:  &footprintCache{max: map[*colstore.Column]int64{}},
		seg:        store,
	}
	fact, err := store.Table(segFactName)
	if err != nil {
		return nil, err
	}
	db.Fact = fact
	db.numRows = fact.NumRows()
	for dim, name := range segTableNames {
		t, err := store.Table(name)
		if err != nil {
			return nil, err
		}
		db.Dims[dim] = t
	}
	dateKeys, err := db.Dims[ssb.DimDate].Column("datekey")
	if err != nil {
		return nil, err
	}
	db.buildDateIndex(dateKeys.DecodeAll(nil, nil))
	return db, nil
}
