package exec

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/bitmap"
	"repro/internal/compress"
	"repro/internal/delta"
	"repro/internal/iosim"
	"repro/internal/obs"
	"repro/internal/ssb"
)

// This file evaluates a query plan over the write store and unions the
// partial with the read-optimized store's result — the WS side of the
// paper's split architecture. The scan is deliberately simple (row-at-a-
// time over in-memory columnar batches, one pass, no parallelism): the
// write store is bounded by the compaction threshold, so its scan cost is a
// small constant on top of the segment scan. What it shares with the block
// engines is the planning: the same planProbes output (dimension predicate
// evaluation, between-rewritten joins, membership sets) applies to delta
// values, and per-batch running min/max gives unflushed data the same
// zone-map pruning sealed segments get.

// wsGroup is one group's raw (pre-finalize) accumulation.
type wsGroup struct {
	keys  []string
	cells []int64
}

// wsPartial is the write-store side of a snapshot query.
type wsPartial struct {
	rows  map[string]*wsGroup // grouped accumulations by composite key
	cells []int64             // ungrouped accumulation
	n     int64               // qualifying delta rows
}

// wsKey renders group keys as one map key.
func wsKey(keys []string) string { return strings.Join(keys, "\x00") }

// scanWS evaluates q over the delta view. The whole pass is free in the
// logical I/O model: delta values are memory-resident writes, and the
// planning it needs (dimension predicate evaluation, group extractors) was
// already performed — and charged — by the sealed-engine run of the same
// query, so re-charging it here would make a query's reported I/O jump the
// moment a single delta row exists. The re-planning CPU is accepted: it
// keeps the engines' internals untouched, and the write store is bounded
// by the compaction threshold.
// del (nil = none) is the write-store deletion vector, indexed by
// delta-global row; rows inserted after the last delete may lie past its
// length and are implicitly live.
func (db *DB) scanWS(ctx context.Context, view *delta.View, q *ssb.Query, cfg Config, del *bitmap.Bitmap, tr *obs.Trace) *wsPartial {
	// The WS scan is one trace stage: batches pruned/covered by the
	// unflushed zone maps, rows scanned vs qualifying, tombstones skipped.
	// It charges nothing to st (see below), so the counters are recorded
	// directly rather than via Stats deltas.
	var sc obs.StageCounters
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	specs := q.AggSpecs()
	out := &wsPartial{cells: make([]int64, len(specs))}
	ssb.InitCells(specs, out.cells)

	var planSt iosim.Stats // planning I/O already charged by the sealed run
	probes := db.planProbes(q, cfg, &planSt)
	pcols := make([]string, len(probes))
	for i, p := range probes {
		pcols[i] = p.col.Name
	}
	aggNames, ia, ib := ssb.AggInputs(specs)

	grouped := len(q.GroupBy) > 0
	var exs []*groupExtractor
	var fkNames []string
	var strides []int64
	var groups map[int64][]int64
	if grouped {
		// Force the invisible-join layout (like the fused pipeline): delta
		// foreign keys are physical positions, so extraction is a direct
		// array index; dates resolve through the key->position map.
		ij := cfg
		ij.InvisibleJoin = true
		for _, g := range q.GroupBy {
			exs = append(exs, db.newGroupExtractor(g, ij, &planSt))
			fkNames = append(fkNames, g.Dim.FactFK())
		}
		strides, _ = groupStrides(exs)
		groups = map[int64][]int64{}
	}

	// next tracks the delta-global index of the next visible row, anchoring
	// the deletion-vector lookups; it must advance on every exit path,
	// including zone-map skips.
	next := view.Lo()
	view.ForEach(func(b *delta.Batch, lo, hi int) bool {
		if ctx.Err() != nil {
			return false
		}
		base := next - int64(lo)
		next += int64(hi - lo)
		// Zone-map pruning on unflushed data: a batch no probe can match
		// contributes nothing and is skipped without touching values.
		for i, p := range probes {
			if mn, mx, ok := b.MinMax(pcols[i]); ok && !p.mayMatch(mn, mx) {
				if tr != nil {
					sc.BlocksPruned++
				}
				return true
			}
		}
		// Whole-batch fast path (kernels): when every probe's batch min/max
		// proves full coverage and no row in the batch is tombstoned, the
		// batch folds straight into the aggregate accumulators with no
		// per-row probe tests — the unflushed analogue of the block
		// engines' covered-block pass-through.
		if !grouped && cfg.KernelsActive() && kernelableSpecs(specs, ia, ib) {
			covered := true
			for i, p := range probes {
				mn, mx, ok := b.MinMax(pcols[i])
				if !ok || !p.coversBlock(mn, mx) {
					covered = false
					break
				}
			}
			if covered && (del == nil || del.CountRange(int(base)+lo, int(base)+hi) == 0) {
				if tr != nil {
					sc.BlocksCovered++
					sc.KernelFolds++
				}
				accs := make([]compress.AggAcc, len(aggNames))
				for i, name := range aggNames {
					accs[i] = compress.NewAggAcc()
					for _, v := range b.Col(name)[lo:hi] {
						accs[i].Observe(v, 1)
					}
				}
				out.n += int64(hi - lo)
				foldAccCells(specs, ia, out.cells, accs, int64(hi-lo))
				return true
			}
		}
		pvals := make([][]int32, len(probes))
		for i := range probes {
			pvals[i] = b.Col(pcols[i])
		}
		avals := make([][]int32, len(aggNames))
		for i, name := range aggNames {
			avals[i] = b.Col(name)
		}
		gvals := make([][]int32, len(fkNames))
		for i, name := range fkNames {
			gvals[i] = b.Col(name)
		}
	row:
		for r := lo; r < hi; r++ {
			if (r-lo)&0xFFFF == 0xFFFF && ctx.Err() != nil {
				return false
			}
			if del != nil {
				if g := base + int64(r); g < int64(del.Len()) && del.Get(int(g)) {
					if tr != nil {
						sc.Tombstoned++
					}
					continue row
				}
			}
			for i, p := range probes {
				v := pvals[i][r]
				if p.isPred {
					if !p.pred.Match(v) {
						continue row
					}
				} else if !p.matches(v) {
					continue row
				}
			}
			out.n++
			cells := out.cells
			if grouped {
				idx := int64(0)
				for i, ex := range exs {
					pos := gvals[i][r]
					if ex.isDate {
						pos = db.dateByKey[pos]
					}
					idx += int64(ex.attr[pos]) * strides[i]
				}
				cells = groups[idx]
				if cells == nil {
					cells = make([]int64, len(specs))
					ssb.InitCells(specs, cells)
					groups[idx] = cells
				}
			}
			for k, s := range specs {
				var v int64
				if s.Func != ssb.FuncCount {
					var a, b2 int32
					a = avals[ia[k]][r]
					if ib[k] >= 0 {
						b2 = avals[ib[k]][r]
					}
					v = s.Expr.Eval(a, b2)
				}
				cells[k] = s.Combine(cells[k], v)
			}
		}
		return true
	})

	if grouped {
		out.rows = make(map[string]*wsGroup, len(groups))
		for idx, cells := range groups {
			keys := make([]string, len(exs))
			rem := idx
			for i := range exs {
				keys[i] = exs[i].render(int32(rem / strides[i]))
				rem %= strides[i]
			}
			out.rows[wsKey(keys)] = &wsGroup{keys: keys, cells: cells}
		}
	}
	if tr != nil {
		sc.RowsIn = view.Len()
		sc.RowsOut = out.n
		sc.WallNs = time.Since(t0).Nanoseconds()
		tr.AddStage("ws-scan", fmt.Sprintf("%d delta rows", view.Len()), sc)
	}
	return out
}

// mergeWS unions the sealed engine result with the write-store partial.
// Grouped rows merge cell-wise by group key — every emitted group saw at
// least one row on its side, so its cells are raw accumulations and
// AggSpec.Merge is exact. Ungrouped queries need the sealed side's
// qualifying-row count to tell "zero rows" (identity) from real zeros, so
// RunCtx appends a hidden COUNT spec to the engine's plan; sealed carries
// len(specs)+1 aggregates with the count last.
func mergeWS(q *ssb.Query, specs []ssb.AggSpec, sealed *ssb.Result, ws *wsPartial) *ssb.Result {
	if len(q.GroupBy) == 0 {
		vals := sealed.Rows[0].AggValues()
		sealedN := vals[len(vals)-1]
		sealedCells := vals[:len(specs)]
		merged := make([]int64, len(specs))
		switch {
		case sealedN == 0 && ws.n == 0:
			// Both sides empty: the all-zero convention.
		case sealedN == 0:
			copy(merged, ws.cells)
		case ws.n == 0:
			copy(merged, sealedCells)
		default:
			for k, s := range specs {
				merged[k] = s.Merge(sealedCells[k], ws.cells[k])
			}
		}
		return ssb.NewResult(q.ID, []ssb.ResultRow{ssb.MakeRow(nil, ssb.FinalizeCells(specs, merged, sealedN+ws.n))})
	}

	merged := make(map[string]*wsGroup, len(sealed.Rows)+len(ws.rows))
	for _, r := range sealed.Rows {
		merged[wsKey(r.Keys)] = &wsGroup{keys: r.Keys, cells: append([]int64(nil), r.AggValues()...)}
	}
	for key, g := range ws.rows {
		if e, ok := merged[key]; ok {
			for k, s := range specs {
				e.cells[k] = s.Merge(e.cells[k], g.cells[k])
			}
		} else {
			merged[key] = g
		}
	}
	rows := make([]ssb.ResultRow, 0, len(merged))
	for _, g := range merged {
		rows = append(rows, ssb.MakeRow(g.keys, g.cells))
	}
	return ssb.NewResult(q.ID, rows)
}
