package exec

import (
	"context"
	"time"

	"repro/internal/bitmap"
	"repro/internal/colstore"
	"repro/internal/compress"
	"repro/internal/iosim"
	"repro/internal/obs"
	"repro/internal/ssb"
	"repro/internal/vector"
)

// Run executes an SSBM query under the given configuration. The DB's
// storage must agree with cfg.Compression (BuildDB's compressed flag).
//
// Run is safe to call concurrently from multiple goroutines on one shared
// DB as long as every call owns its st: all plan, probe, scratch and
// aggregation state is per-call (pooled fused workers are scrubbed on
// release), and segment-backed columns acquire blocks through the
// concurrency-safe buffer pool. iosim.Stats itself is single-owner — two
// concurrent calls must not share one st.
func (db *DB) Run(q *ssb.Query, cfg Config, st *iosim.Stats) *ssb.Result {
	res, _ := db.RunCtx(context.Background(), q, cfg, st)
	return res
}

// RunCtx is Run with cancellation: the block loops of every pipeline check
// ctx between blocks, so an abandoned query stops acquiring segments within
// one 64K-row block of the cancellation and releases everything it pinned
// (blocks are only ever pinned for the duration of one block operation).
// When ctx is canceled the partial result is discarded and ctx.Err() is
// returned; st may have recorded a prefix of the query's I/O.
//
// For a DB with a write store (EnableDelta), RunCtx first resolves the
// query's snapshot: one consistent (sealed store, delta view) frontier.
// The chosen engine scans the sealed store exactly as it would a frozen DB,
// the write store is scanned separately (wsscan.go), and the partials merge
// — so inserts accepted after the snapshot are invisible to this query and
// inserts accepted before are always included, for every engine.
func (db *DB) RunCtx(ctx context.Context, q *ssb.Query, cfg Config, st *iosim.Stats) (*ssb.Result, error) {
	// The trace rides in the context so no signature above exec changes;
	// it is extracted exactly once per query. tr == nil is the untraced
	// fast path: every recording site below tests one pointer.
	tr := obs.FromContext(ctx)
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
		tr.Query = q.ID
		tr.SQL = q.SQL()
		tr.Config = cfg.Code()
		tr.Workers = cfg.Workers
		tr.Epoch = db.Epoch()
		defer func() { tr.WallNs = time.Since(t0).Nanoseconds() }()
	}
	sdb, view, del := db.snapshotForRead()
	if view == nil || view.Len() == 0 {
		return sdb.runFrozen(ctx, q, cfg, st, del.sealed, tr)
	}
	specs := q.AggSpecs()
	runQ := q
	if len(q.GroupBy) == 0 {
		// Hidden qualifying-row count so the merge can tell an empty sealed
		// side from real zeros (see mergeWS). COUNT has no input column, so
		// the engine's scan work and I/O accounting are unchanged.
		cp := *q
		cp.Aggs = append(append([]ssb.AggSpec(nil), specs...), ssb.AggSpec{Func: ssb.FuncCount})
		runQ = &cp
	}
	sealedRes, err := sdb.runFrozen(ctx, runQ, cfg, st, del.sealed, tr)
	if err != nil {
		return nil, err
	}
	ws := sdb.scanWS(ctx, view, q, cfg, del.ws, tr)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return mergeWS(q, specs, sealedRes, ws), nil
}

// runFrozen dispatches one engine over this DB's (immutable) storage,
// masking the snapshot's sealed-side deletion vector (nil = none) so every
// engine excludes tombstoned rows identically.
func (db *DB) runFrozen(ctx context.Context, q *ssb.Query, cfg Config, st *iosim.Stats, del *bitmap.Bitmap, tr *obs.Trace) (*ssb.Result, error) {
	var res *ssb.Result
	if !cfg.LateMat {
		res = db.runEarlyMat(ctx, q, cfg, st, del, tr)
	} else if cfg.FusedActive() {
		res = db.runFused(ctx, q, cfg, st, del, tr)
	} else {
		res = db.runLateMat(ctx, q, cfg, st, del, tr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// runLateMat is the late-materialized pipeline: predicates produce position
// lists over the fact table; values are fetched only at qualifying
// positions (paper Section 5.2), and joins are executed as predicates on
// fact foreign-key columns (Section 5.4).
func (db *DB) runLateMat(ctx context.Context, q *ssb.Query, cfg Config, st *iosim.Stats, del *bitmap.Bitmap, tr *obs.Trace) *ssb.Result {
	if tr != nil {
		tr.Engine = "per-probe"
	}
	rec := newStageRec(tr, st)
	probes := db.planProbes(q, cfg, st)
	rec.rec("plan", "", st, 0, 0, 0)

	// Phase 2: apply each fact-side predicate, pipelining candidates.
	var pos *vector.Positions
	for _, p := range probes {
		if ctx.Err() != nil {
			return emptyResult(q)
		}
		var rowsIn int64
		if rec != nil {
			rowsIn = int64(db.numRows)
			if pos != nil {
				rowsIn = int64(pos.Len())
			}
		}
		pos = p.apply(ctx, db, pos, cfg, st)
		if rec != nil {
			rec.rec("probe", probeDetail(p), st, rowsIn, int64(pos.Len()), 0)
		}
		if pos.Len() == 0 {
			break
		}
	}
	if pos == nil {
		pos = vector.NewRangePositions(0, int32(db.numRows))
	}
	if del != nil && pos.Len() > 0 {
		// Mask tombstoned rows before any value is fetched at the final
		// positions: deletes behave as one more conjunct on every plan.
		before := int64(pos.Len())
		bm := pos.ToBitmap(db.numRows)
		if bm == pos.Bits {
			bm = bm.Clone() // ToBitmap may return the probe's own bitmap
		}
		bm.AndNot(del)
		pos = vector.NewBitmapPositions(bm)
		if rec != nil {
			after := int64(pos.Len())
			rec.rec("tombstone-mask", "", st, before, after, before-after)
		}
	}
	if pos.Len() == 0 || ctx.Err() != nil {
		return emptyResult(q)
	}

	// Phase 3: extract group-by attributes and aggregate inputs at the
	// final position list only.
	if rec == nil {
		return db.aggregate(ctx, q, cfg, pos, st)
	}
	rowsIn := int64(pos.Len())
	res := db.aggregate(ctx, q, cfg, pos, st)
	rec.rec("aggregate", "", st, rowsIn, int64(len(res.Rows)), 0)
	return res
}

// factProbe is one predicate to apply against a fact column: either a
// direct value predicate (between-rewritten joins, measure filters) or a
// membership probe. Membership is represented as a hash set on the
// per-probe path (the paper's simulated hash join) and as a dense bitmap
// over the dimension key space on the fused path, where dimension keys are
// reassigned positions and a probe is a branch-free bit test.
type factProbe struct {
	col    *colstore.Column
	pred   compress.Pred
	isPred bool
	set    map[int32]struct{}
	// dense holds membership bits anchored at setMin: bit (k-setMin) is
	// set iff key k qualifies. Built instead of set under Config.Fused.
	dense *bitmap.Bitmap
	// setMin/setMax bound the membership keys; blocks whose value range
	// cannot intersect [setMin, setMax] are skipped without I/O.
	setMin, setMax int32
	// sortedFirst marks probes that exploit the fact sort order and
	// should run before everything else.
	sortedFirst bool
}

// matches reports membership of v in the probe's key set (dense or hash).
func (p *factProbe) matches(v int32) bool {
	if p.dense != nil {
		return v >= p.setMin && v <= p.setMax && p.dense.Get(int(v-p.setMin))
	}
	_, ok := p.set[v]
	return ok
}

// keyCount returns the number of keys in the membership set.
func (p *factProbe) keyCount() int {
	if p.dense != nil {
		return p.dense.Count()
	}
	return len(p.set)
}

// mayMatch reports whether any value in [mn, mx] could survive the probe,
// from block statistics alone.
func (p *factProbe) mayMatch(mn, mx int32) bool {
	if p.isPred {
		return p.pred.MayMatch(mn, mx)
	}
	return mx >= p.setMin && mn <= p.setMax
}

// coversBlock reports whether every value in [mn, mx] survives the probe,
// so the block needs no decode at all.
func (p *factProbe) coversBlock(mn, mx int32) bool {
	if p.isPred {
		lo, hi, ok := p.pred.Bounds()
		return ok && lo <= mn && mx <= hi
	}
	// Membership: only provable from statistics for single-value blocks.
	return mn == mx && p.matches(mn)
}

// planProbes runs join phase 1 (dimension predicate evaluation) and
// compiles the query's restrictions into an ordered probe list.
func (db *DB) planProbes(q *ssb.Query, cfg Config, st *iosim.Stats) []*factProbe {
	var sorted, preds, hashes []*factProbe

	// Group dimension filters per dimension: all predicates on one
	// dimension evaluate together and summarize as a single fact probe
	// (the invisible-join advantage Figure 8 discusses for queries with
	// two predicates on the same dimension).
	byDim := map[ssb.Dim][]ssb.DimFilter{}
	var dimOrder []ssb.Dim
	for _, f := range q.DimFilters {
		if _, ok := byDim[f.Dim]; !ok {
			dimOrder = append(dimOrder, f.Dim)
		}
		byDim[f.Dim] = append(byDim[f.Dim], f)
	}

	for _, dim := range dimOrder {
		probe := db.dimProbe(dim, byDim[dim], cfg, st)
		switch {
		case probe.isPred && probe.sortedFirst:
			sorted = append(sorted, probe)
		case probe.isPred:
			preds = append(preds, probe)
		default:
			hashes = append(hashes, probe)
		}
	}

	// Fact measure filters (flight 1).
	var facts []*factProbe
	for _, f := range q.FactFilters {
		facts = append(facts, &factProbe{
			col:    db.Fact.MustColumn(f.Col),
			pred:   f.Pred,
			isPred: true,
		})
	}

	out := make([]*factProbe, 0, len(sorted)+len(facts)+len(preds)+len(hashes))
	out = append(out, sorted...)
	out = append(out, facts...)
	out = append(out, preds...)
	out = append(out, hashes...)
	return out
}

// dimProbe runs phase 1 of the join for one dimension: evaluate its
// predicates against the dimension table, then summarize the matching keys
// as a fact-column probe. With the invisible join enabled and a contiguous
// match, the probe is a between predicate (Section 5.4.2); otherwise it is
// a hash-set membership test.
func (db *DB) dimProbe(dim ssb.Dim, filters []ssb.DimFilter, cfg Config, st *iosim.Stats) *factProbe {
	dimTab := db.Dims[dim]
	var dimPos *vector.Positions
	for _, f := range filters {
		col := dimTab.MustColumn(f.Col)
		pred := dimFilterPred(col, f)
		if dimPos == nil {
			dimPos = col.Filter(pred, st)
		} else {
			dimPos = col.FilterAt(pred, dimPos, st)
		}
	}
	fkCol := db.Fact.MustColumn(dim.FactFK())

	if cfg.InvisibleJoin {
		if lo, hi, ok := contiguousRange(dimPos); ok {
			if dim == ssb.DimDate {
				// Translate contiguous date positions to a
				// datekey value range: the date key is not a
				// dense position, but it is chronologically
				// sorted, so contiguous positions map to a
				// contiguous key interval.
				if lo >= hi {
					return &factProbe{col: fkCol, pred: compress.Between(1, 0), isPred: true, sortedFirst: true}
				}
				keyCol := dimTab.MustColumn("datekey")
				// Counted point lookups: the two boundary acquires must
				// show up in BlocksFetched for pool reconciliation, but
				// their byte cost is (and was) not charged.
				keyLo := keyCol.GetCounted(lo, st)
				keyHi := keyCol.GetCounted(hi-1, st)
				return &factProbe{col: fkCol, pred: compress.Between(keyLo, keyHi), isPred: true, sortedFirst: true}
			}
			// Customer/supplier/part keys were reassigned to
			// positions, so the between predicate is directly on
			// fact FK values.
			return &factProbe{col: fkCol, pred: compress.Between(lo, hi-1), isPred: true}
		}
	}

	// Membership fallback (and the entire i-configuration): build the key
	// set — a hash set on the per-probe path, a dense bitmap over
	// [setMin, setMax] on the fused path.
	var keys []int32
	if dim == ssb.DimDate {
		keyCol := dimTab.MustColumn("datekey")
		keys = keyCol.Gather(dimPos, nil, st)
	} else {
		keys = dimPos.ToSlice(nil)
	}
	probe := &factProbe{col: fkCol, setMin: 0, setMax: -1}
	if len(keys) == 0 {
		// Empty key range [0, -1] matches nothing.
		probe.set = map[int32]struct{}{}
		return probe
	}
	mn, mx := keys[0], keys[0]
	for _, k := range keys {
		if k < mn {
			mn = k
		}
		if k > mx {
			mx = k
		}
	}
	probe.setMin, probe.setMax = mn, mx
	if cfg.FusedActive() {
		probe.dense = bitmap.New(int(mx-mn) + 1)
		for _, k := range keys {
			probe.dense.Set(int(k - mn))
		}
		return probe
	}
	probe.set = make(map[int32]struct{}, len(keys))
	for _, k := range keys {
		probe.set[k] = struct{}{}
	}
	return probe
}

// dimFilterPred translates a logical dimension filter into a code-space
// predicate for the dimension column.
func dimFilterPred(col *colstore.Column, f ssb.DimFilter) compress.Pred {
	if f.IsInt {
		return f.IntPred()
	}
	return col.Dict.EncodePred(f.Op, f.StrA, f.StrB, f.StrSet)
}

// apply runs the probe against the fact table, restricted to candidate
// positions when cand is non-nil.
func (p *factProbe) apply(ctx context.Context, db *DB, cand *vector.Positions, cfg Config, st *iosim.Stats) *vector.Positions {
	if p.isPred {
		if cfg.BlockIter {
			if cand == nil {
				if cfg.Workers > 1 && !sortedFastPathApplies(p.col, p.pred) {
					return parallelFilter(ctx, p.col, p.pred, cfg.Workers, st)
				}
				return p.col.FilterCtx(ctx, p.pred, st)
			}
			return p.col.FilterAtCtx(ctx, p.pred, cand, st)
		}
		return db.tupleFilter(ctx, p.col, p.pred, cand, cfg, st)
	}
	if cand == nil && cfg.Workers > 1 && cfg.BlockIter {
		return parallelProbeSet(ctx, p, cfg.Workers, st)
	}
	return db.probeSet(ctx, p, cand, cfg, st)
}

// sortedFastPathApplies reports whether Column.Filter would answer pred via
// the sorted-column range probe, which is cheaper than any parallel scan.
func sortedFastPathApplies(col *colstore.Column, pred compress.Pred) bool {
	if col.Sorted != colstore.PrimarySort {
		return false
	}
	_, _, ok := pred.Bounds()
	return ok
}

// tupleFilter is the "getNext" selection path used when block iteration is
// disabled: one iterator interface call per value (paper Section 6.3.2,
// "we wrote alternative versions that use getNext"). The sorted-column fast
// path is retained — it is a property of the storage sort order, not of the
// iteration interface.
func (db *DB) tupleFilter(ctx context.Context, col *colstore.Column, pred compress.Pred, cand *vector.Positions, cfg Config, st *iosim.Stats) *vector.Positions {
	if col.Sorted == colstore.PrimarySort && cand == nil {
		if _, _, ok := pred.Bounds(); ok {
			return col.Filter(pred, st)
		}
	}
	n := col.NumRows()
	out := bitmap.New(n)
	if cand == nil {
		base := 0
		var scratch []int32
		for bi := 0; bi < col.NumBlocks(); bi++ {
			if ctx.Err() != nil {
				break
			}
			blk, release := col.AcquireBlock(bi)
			st.BlockFetched()
			st.Read(blk.CompressedBytes())
			if !cfg.NoKernels && wholeBlockCheap(blk.Encoding()) {
				// Run/bit-vector blocks filter natively in O(runs) /
				// O(distinct values): paying a getNext call per value
				// on top of that would simulate work the storage never
				// does. The ablation's per-value iterator cost is kept
				// for every other encoding.
				st.KernelFold()
				blk.Filter(pred, base, out)
				base += blk.Len()
				release()
				continue
			}
			scratch = blk.AppendTo(scratch[:0])
			st.Gathered()
			st.Decoded(int64(len(scratch)) * 4)
			release()
			it := vector.NewSliceIter(scratch)
			i := base
			for {
				v, ok := it.Next()
				if !ok {
					break
				}
				if pred.Match(v) {
					out.Set(i)
				}
				i++
			}
			base += len(scratch)
		}
		return vector.NewBitmapPositions(out)
	}
	posList := cand.ToSlice(nil)
	vals := col.Gather(cand, nil, st)
	it := vector.NewSliceIter(vals)
	for _, pos := range posList {
		v, _ := it.Next()
		if pred.Match(v) {
			out.Set(int(pos))
		}
	}
	return vector.NewBitmapPositions(out)
}

// probeSet applies a membership probe on a fact FK column — the simulated
// hash join of Section 5.4.1 phase 2. Blocks whose min/max value range
// cannot intersect the probe's key range are skipped before any I/O is
// charged or values decoded, on both the full-scan and the pipelined
// candidate path.
func (db *DB) probeSet(ctx context.Context, p *factProbe, cand *vector.Positions, cfg Config, st *iosim.Stats) *vector.Positions {
	col := p.col
	n := col.NumRows()
	out := bitmap.New(n)
	if cand == nil {
		base := 0
		var scratch []int32
		for bi := 0; bi < col.NumBlocks(); bi++ {
			if ctx.Err() != nil {
				break
			}
			// Zone-map pruning before the block is acquired: a pruned
			// segment is never read from disk.
			if mn, mx := col.BlockMinMax(bi); !p.mayMatch(mn, mx) {
				st.BlockPruned()
				base += col.BlockLen(bi)
				continue
			}
			blk, release := col.AcquireBlock(bi)
			st.BlockFetched()
			st.Read(blk.CompressedBytes())
			if cfg.KernelsActive() {
				// Membership directly on the compressed block: one test
				// per run / distinct value where the encoding allows,
				// no decode.
				st.KernelFold()
				blkLen := blk.Len()
				blk.FilterFunc(p.matches, base, out)
				release()
				base += blkLen
				continue
			}
			scratch = blk.AppendTo(scratch[:0])
			st.Gathered()
			st.Decoded(int64(len(scratch)) * 4)
			release()
			if cfg.BlockIter {
				for i, v := range scratch {
					if p.matches(v) {
						out.Set(base + i)
					}
				}
			} else {
				it := vector.NewSliceIter(scratch)
				i := base
				for {
					v, ok := it.Next()
					if !ok {
						break
					}
					if p.matches(v) {
						out.Set(i)
					}
					i++
				}
			}
			base += len(scratch)
		}
		return vector.NewBitmapPositions(out)
	}
	// Pipelined path: group candidates by block (blocks hold BlockSize
	// values each) so pruned blocks are never gathered from.
	posList := cand.ToSlice(nil)
	var idx, vals []int32
	for i := 0; i < len(posList); {
		if ctx.Err() != nil {
			break
		}
		bi := int(posList[i]) / colstore.BlockSize
		base := int32(bi) * colstore.BlockSize
		idx = idx[:0]
		j := i
		for j < len(posList) && int(posList[j])/colstore.BlockSize == bi {
			idx = append(idx, posList[j]-base)
			j++
		}
		i = j
		if mn, mx := col.BlockMinMax(bi); !p.mayMatch(mn, mx) {
			st.BlockPruned()
			continue
		}
		vals = col.GatherBlock(bi, idx, vals[:0], st)
		if cfg.BlockIter {
			for k, v := range vals {
				if p.matches(v) {
					out.Set(int(base + idx[k]))
				}
			}
		} else {
			it := vector.NewSliceIter(vals)
			for _, bl := range idx {
				v, _ := it.Next()
				if p.matches(v) {
					out.Set(int(base + bl))
				}
			}
		}
	}
	return vector.NewBitmapPositions(out)
}

// contiguousRange reports whether the positions form one contiguous run
// [lo, hi).
func contiguousRange(p *vector.Positions) (lo, hi int32, ok bool) {
	switch p.Kind {
	case vector.PosRange:
		return p.Start, p.End, true
	case vector.PosExplicit:
		if len(p.List) == 0 {
			return 0, 0, true
		}
		first, last := p.List[0], p.List[len(p.List)-1]
		if int(last-first)+1 == len(p.List) {
			return first, last + 1, true
		}
		return 0, 0, false
	default:
		n := p.Bits.Count()
		if n == 0 {
			return 0, 0, true
		}
		first := p.Bits.NextSet(0)
		last := first + n - 1
		// Contiguous iff the last bit of the presumed run is set and no
		// bit is set after it: n set bits then occupy exactly
		// [first, last].
		if last < p.Bits.Len() && p.Bits.Get(last) &&
			(last+1 >= p.Bits.Len() || p.Bits.NextSet(last+1) == -1) {
			return int32(first), int32(last + 1), true
		}
		return 0, 0, false
	}
}
