package exec

import (
	"context"
	"strconv"

	"repro/internal/bitmap"
	"repro/internal/colstore"
	"repro/internal/compress"
	"repro/internal/iosim"
	"repro/internal/ssb"
	"repro/internal/vector"
)

// denseLimit bounds the composite group-key space for which aggregation
// uses flat dense arrays (one int64 per possible group) instead of a hash
// table. Shared by the per-probe and fused pipelines.
const denseLimit = 1 << 22

// groupExtractor turns fact foreign-key values into group-by attribute
// codes for one GROUP BY column (join phase 3 from Section 5.4.1).
type groupExtractor struct {
	g     ssb.GroupCol
	fkCol *colstore.Column

	// attr maps dimension position -> attribute code (the paper's
	// "direct array look-up": dimension keys are positions after key
	// reassignment, so extraction indexes straight into the decoded
	// attribute column).
	attr []int32
	// viaHash replaces attr when the invisible join is disabled: the
	// late-materialized hash join extracts group values through a hash
	// table keyed by the FK value.
	viaHash map[int32]int32
	// isDate marks the date dimension, whose key is not a position and
	// therefore always needs a real lookup ("a full join must be
	// performed").
	isDate bool

	dict    *compress.Dict
	isInt   bool
	minCode int32
	card    int32
}

// newGroupExtractor prepares extraction state for one group column,
// charging the I/O needed to read the dimension attribute column.
func (db *DB) newGroupExtractor(g ssb.GroupCol, cfg Config, st *iosim.Stats) *groupExtractor {
	dimTab := db.Dims[g.Dim]
	attrCol := dimTab.MustColumn(g.Col)
	ex := &groupExtractor{
		g:      g,
		fkCol:  db.Fact.MustColumn(g.Dim.FactFK()),
		isDate: g.Dim == ssb.DimDate,
		dict:   attrCol.Dict,
	}
	attr := attrCol.DecodeAll(nil, st)
	if ex.dict != nil {
		ex.card = int32(ex.dict.Size())
	} else {
		ex.isInt = true
		mn, mx := attr[0], attr[0]
		for _, v := range attr {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		ex.minCode = mn
		ex.card = mx - mn + 1
		for i, v := range attr {
			attr[i] = v - mn
		}
	}
	if cfg.InvisibleJoin {
		// Direct array extraction (dates still resolve key->position
		// through the date hash, see extract).
		ex.attr = attr
		return ex
	}
	// Hash-join extraction: FK value -> attribute code.
	ex.viaHash = make(map[int32]int32, len(attr))
	if ex.isDate {
		keyCol := dimTab.MustColumn("datekey")
		keys := keyCol.DecodeAll(nil, st)
		for i, k := range keys {
			ex.viaHash[k] = attr[i]
		}
	} else {
		for i, c := range attr {
			ex.viaHash[int32(i)] = c
		}
	}
	return ex
}

// extract maps gathered FK values to attribute codes, appending to dst.
func (ex *groupExtractor) extract(db *DB, fkVals []int32, cfg Config, dst []int32) []int32 {
	switch {
	case ex.viaHash != nil:
		for _, v := range fkVals {
			dst = append(dst, ex.viaHash[v])
		}
	case ex.isDate:
		for _, v := range fkVals {
			dst = append(dst, ex.attr[db.dateByKey[v]])
		}
	case cfg.BlockIter:
		for _, v := range fkVals {
			dst = append(dst, ex.attr[v])
		}
	default:
		it := vector.NewSliceIter(fkVals)
		for {
			v, ok := it.Next()
			if !ok {
				break
			}
			dst = append(dst, ex.attr[v])
		}
	}
	return dst
}

// render converts an attribute code back to its display value.
func (ex *groupExtractor) render(code int32) string {
	if ex.dict != nil {
		return ex.dict.Value(code)
	}
	return strconv.Itoa(int(code + ex.minCode))
}

// aggregate runs join phase 3 plus aggregation over the final position
// list. Gathers observe ctx per candidate block, so a canceled query stops
// acquiring fact segments mid-extraction too; the (garbage) partial result
// is discarded by RunCtx.
func (db *DB) aggregate(ctx context.Context, q *ssb.Query, cfg Config, pos *vector.Positions, st *iosim.Stats) *ssb.Result {
	// Gather aggregate input measures at qualifying positions only, then
	// evaluate every aggregate expression into a per-row value column.
	specs := q.AggSpecs()
	n := pos.Len()

	// Ungrouped single-operand aggregates fold directly on the compressed
	// blocks: each distinct input column is walked once with AggSelect
	// (run/bit-vector blocks never decode a value) instead of gathering a
	// per-row value column. I/O accounting is unchanged — the kernel walks
	// the same candidate blocks the gather would.
	if len(q.GroupBy) == 0 && cfg.KernelsActive() {
		if colNames, ia, ib := ssb.AggInputs(specs); kernelableSpecs(specs, ia, ib) {
			accs := make([]compress.AggAcc, len(colNames))
			for i, name := range colNames {
				accs[i] = compress.NewAggAcc()
				db.Fact.MustColumn(name).AggSelectPositions(ctx, pos, st, &accs[i])
			}
			cells := make([]int64, len(specs))
			ssb.InitCells(specs, cells)
			foldAccCells(specs, ia, cells, accs, int64(n))
			return ssb.NewResult(q.ID, []ssb.ResultRow{ssb.MakeRow(nil, ssb.FinalizeCells(specs, cells, int64(n)))})
		}
	}
	values := evalAggValues(specs, cfg.BlockIter, n, func(name string) []int32 {
		vals := db.Fact.MustColumn(name).GatherCtx(ctx, pos, nil, st)
		if len(vals) < n {
			// Canceled mid-gather: pad so downstream indexing stays in
			// bounds until RunCtx discards the result.
			vals = append(vals, make([]int32, n-len(vals))...)
		}
		return vals
	})

	if len(q.GroupBy) == 0 {
		cells := make([]int64, len(specs))
		ssb.InitCells(specs, cells)
		for k, s := range specs {
			if values[k] == nil { // COUNT: one per row
				cells[k] += int64(n)
				continue
			}
			for _, v := range values[k] {
				cells[k] = s.Combine(cells[k], v)
			}
		}
		return ssb.NewResult(q.ID, []ssb.ResultRow{ssb.MakeRow(nil, ssb.FinalizeCells(specs, cells, int64(n)))})
	}

	// Group extraction. A cancellation observed here returns the empty
	// shape immediately — the FK gathers below are full fact-column walks.
	exs := make([]*groupExtractor, len(q.GroupBy))
	codes := make([][]int32, len(q.GroupBy))
	for i, g := range q.GroupBy {
		if ctx.Err() != nil {
			return emptyResult(q)
		}
		exs[i] = db.newGroupExtractor(g, cfg, st)
		fkVals := exs[i].fkCol.GatherCtx(ctx, pos, nil, st)
		if len(fkVals) < n {
			fkVals = append(fkVals, make([]int32, n-len(fkVals))...)
		}
		codes[i] = exs[i].extract(db, fkVals, cfg, nil)
	}

	// Composite dense aggregation: group codes are small, so the
	// composite key space is a flat array (one cell per aggregate).
	nAggs := len(specs)
	strides, total := groupStrides(exs)
	if total <= denseLimit {
		sums := make([]int64, total*int64(nAggs))
		seen := bitmap.New(int(total))
		for r := 0; r < n; r++ {
			idx := int64(0)
			for i := range exs {
				idx += int64(codes[i][r]) * strides[i]
			}
			base := idx * int64(nAggs)
			if !seen.Get(int(idx)) {
				seen.Set(int(idx))
				ssb.InitCells(specs, sums[base:base+int64(nAggs)])
			}
			for k, s := range specs {
				var v int64
				if values[k] != nil {
					v = values[k][r]
				}
				sums[base+int64(k)] = s.Combine(sums[base+int64(k)], v)
			}
		}
		return ssb.NewResult(q.ID, denseGroupRows(exs, strides, specs, sums, seen))
	}

	// Fallback for huge group spaces: hash aggregation.
	m := map[int64][]int64{}
	for r := 0; r < n; r++ {
		idx := int64(0)
		for i := range exs {
			idx += int64(codes[i][r]) * strides[i]
		}
		cells, ok := m[idx]
		if !ok {
			cells = make([]int64, nAggs)
			ssb.InitCells(specs, cells)
			m[idx] = cells
		}
		for k, s := range specs {
			var v int64
			if values[k] != nil {
				v = values[k][r]
			}
			cells[k] = s.Combine(cells[k], v)
		}
	}
	var rows []ssb.ResultRow
	for idx, cells := range m {
		keys := make([]string, len(exs))
		rem := idx
		for i := range exs {
			keys[i] = exs[i].render(int32(rem / strides[i]))
			rem %= strides[i]
		}
		rows = append(rows, ssb.MakeRow(keys, cells))
	}
	return ssb.NewResult(q.ID, rows)
}

// evalAggValues gathers the distinct aggregate input columns through the
// caller's gather function and evaluates every aggregate expression into
// one int64 column per spec. COUNT specs get a nil column — Combine counts
// rows without reading an input — so accumulation loops must treat nil as
// "any value". Shared by the per-probe late-materialized path and the
// denormalized engine.
func evalAggValues(specs []ssb.AggSpec, blockIter bool, n int, gather func(name string) []int32) [][]int64 {
	colNames, ia, ib := ssb.AggInputs(specs)
	measures := make([][]int32, len(colNames))
	for i, name := range colNames {
		measures[i] = gather(name)
	}
	values := make([][]int64, len(specs))
	for k, s := range specs {
		if s.Func == ssb.FuncCount {
			continue
		}
		v := make([]int64, n)
		switch s.Expr.Op {
		case '*':
			computeProduct(v, measures[ia[k]], measures[ib[k]], blockIter)
		case '-':
			computeDiff(v, measures[ia[k]], measures[ib[k]], blockIter)
		default:
			computeCopy(v, measures[ia[k]], blockIter)
		}
		values[k] = v
	}
	return values
}

// groupStrides lays the group extractors' code spaces out as one composite
// key: strides[i] is the multiplier of extractor i's code, total the size of
// the composite space.
func groupStrides(exs []*groupExtractor) (strides []int64, total int64) {
	strides = make([]int64, len(exs))
	total = 1
	for i := len(exs) - 1; i >= 0; i-- {
		strides[i] = total
		total *= int64(exs[i].card)
	}
	return strides, total
}

// denseGroupRows renders the populated cells of a dense composite-key
// aggregation into result rows. sums is laid out with one len(specs) cell
// run per composite group index.
func denseGroupRows(exs []*groupExtractor, strides []int64, specs []ssb.AggSpec, sums []int64, seen *bitmap.Bitmap) []ssb.ResultRow {
	nAggs := len(specs)
	var rows []ssb.ResultRow
	seen.ForEach(func(i int) {
		keys := make([]string, len(exs))
		rem := int64(i)
		for k := range exs {
			keys[k] = exs[k].render(int32(rem / strides[k]))
			rem %= strides[k]
		}
		rows = append(rows, ssb.MakeRow(keys, sums[i*nAggs:i*nAggs+nAggs]))
	})
	return rows
}

// computeProduct fills dst[i] = int64(a[i]) * int64(b[i]).
func computeProduct(dst []int64, a, b []int32, block bool) {
	if block {
		for i := range dst {
			dst[i] = int64(a[i]) * int64(b[i])
		}
		return
	}
	ia, ib := vector.NewSliceIter(a), vector.NewSliceIter(b)
	for i := range dst {
		va, _ := ia.Next()
		vb, _ := ib.Next()
		dst[i] = int64(va) * int64(vb)
	}
}

// computeCopy fills dst[i] = int64(a[i]).
func computeCopy(dst []int64, a []int32, block bool) {
	if block {
		for i := range dst {
			dst[i] = int64(a[i])
		}
		return
	}
	ia := vector.NewSliceIter(a)
	for i := range dst {
		v, _ := ia.Next()
		dst[i] = int64(v)
	}
}

// computeDiff fills dst[i] = int64(a[i]) - int64(b[i]).
func computeDiff(dst []int64, a, b []int32, block bool) {
	if block {
		for i := range dst {
			dst[i] = int64(a[i]) - int64(b[i])
		}
		return
	}
	ia, ib := vector.NewSliceIter(a), vector.NewSliceIter(b)
	for i := range dst {
		va, _ := ia.Next()
		vb, _ := ib.Next()
		dst[i] = int64(va) - int64(vb)
	}
}

// emptyResult matches the reference semantics: aggregates over an empty
// input render as a single all-zero row for ungrouped queries and no rows
// for grouped ones.
func emptyResult(q *ssb.Query) *ssb.Result {
	if len(q.GroupBy) == 0 {
		return ssb.NewResult(q.ID, []ssb.ResultRow{ssb.MakeRow(nil, make([]int64, len(q.AggSpecs())))})
	}
	return ssb.NewResult(q.ID, nil)
}
