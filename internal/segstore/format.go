// Package segstore is the persistent storage layer: an on-disk columnar
// format that splits every column into 64K-row segments stored compressed
// (each segment keeps the encoding internal/compress chose for it), plus a
// buffer manager that lets executors fault segments in lazily under a byte
// budget instead of holding whole columns in memory.
//
// File layout (all integers little-endian):
//
//	magic     8   "SSBSEGM1"
//	sf        8   float64 bits
//	payloads  ...                 segment payloads, back to back, in
//	                              footer order (compress wire format)
//	footer    ...                 directory of tables/columns/segments
//	crc32     4   checksum of the footer bytes
//	footerLen 8   length of the footer bytes
//	magic     8   trailing "SSBSEGM1" (locates the footer from the end)
//
// The footer holds, per table and per column, the column's name, sort kind,
// optional order-preserving dictionary, and one zone-map entry per segment:
// file offset, payload length, encoding tag, row count, min/max, and a
// CRC32 of the payload. Zone maps are the pruning mechanism — a reader
// answers min/max, row-count, and encoding queries from the footer alone,
// so a segment a predicate cannot match is never read or decompressed.
// Every segment except a column's last holds exactly colstore.BlockSize
// rows, which positional addressing relies on.
//
// The format stores the *physical* database — dimension tables sorted by
// their attribute hierarchies, fact foreign keys rewritten to dimension
// positions, strings dictionary-encoded — so opening a file yields tables
// the column executor can run against directly, with no rebuild pass.
//
// Files grow in place: the tuple mover appends frozen write-store blocks
// through Store.Append (append.go), which writes new segment payloads, a
// fresh footer and a new trailer strictly after the current trailer —
// nothing earlier is ever overwritten, at the cost of one superseded
// directory left behind as dead bytes per append. Directory snapshots
// taken before an append keep scanning exactly what they saw, and a torn
// append is recovered at open by scanning backward to the previous valid
// trailer (locateFooter) instead of losing the file.
package segstore

import (
	"encoding/binary"
	"fmt"

	"repro/internal/colstore"
	"repro/internal/compress"
)

// Magic identifies a segment-store file; it differs from the v1 datafile
// magic ("SSBREPR1") so loaders can sniff which format a -data file is.
const Magic = "SSBSEGM1"

// segMeta is one segment's zone-map entry.
type segMeta struct {
	off  uint64
	plen uint64
	// cbytes is the block's model-accounting size (IntBlock.CompressedBytes),
	// persisted so segment-backed columns report byte-identical footprints
	// and logical I/O charges to their resident counterparts. It differs
	// from plen by the wire format's small structural headers.
	cbytes uint64
	enc    compress.Encoding
	rows   uint32
	min    int32
	max    int32
	crc    uint32
	// pid is the segment's buffer-pool frame id within its column — the
	// key the pool caches decoded blocks under. It is runtime-only (never
	// persisted): base segments get their footer index at open, appended
	// and tail-replacement segments get fresh ids, so a store snapshot
	// taken before an append can never collide in the pool with the
	// different segment that now occupies the same live index.
	pid int32
}

// colMeta is one column's footer entry.
type colMeta struct {
	table string
	name  string
	sort  colstore.SortKind
	dict  *compress.Dict
	segs  []segMeta
	ord   int32 // global column ordinal, the pool key namespace
}

// tableMeta is one table's footer entry.
type tableMeta struct {
	name string
	cols []*colMeta
}

// footerWriter accumulates the footer byte stream.
type footerWriter struct{ buf []byte }

func (w *footerWriter) u8(v byte)    { w.buf = append(w.buf, v) }
func (w *footerWriter) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *footerWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *footerWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *footerWriter) str16(s string) {
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *footerWriter) str32(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// encodeFooter renders the directory.
func encodeFooter(tables []*tableMeta) []byte {
	w := &footerWriter{}
	w.u32(uint32(len(tables)))
	for _, t := range tables {
		w.str16(t.name)
		w.u32(uint32(len(t.cols)))
		for _, c := range t.cols {
			w.str16(c.name)
			w.u8(byte(c.sort))
			if c.dict != nil {
				w.u8(1)
				vals := c.dict.Values()
				w.u32(uint32(len(vals)))
				for _, v := range vals {
					w.str32(v)
				}
			} else {
				w.u8(0)
			}
			w.u32(uint32(len(c.segs)))
			for _, s := range c.segs {
				w.u64(s.off)
				w.u64(s.plen)
				w.u64(s.cbytes)
				w.u8(byte(s.enc))
				w.u32(s.rows)
				w.u32(uint32(s.min))
				w.u32(uint32(s.max))
				w.u32(s.crc)
			}
		}
	}
	return w.buf
}

// footerReader walks the footer with bounds checking.
type footerReader struct {
	data []byte
	pos  int
	bad  bool
}

func (r *footerReader) u8() byte {
	if r.pos+1 > len(r.data) {
		r.bad = true
		return 0
	}
	v := r.data[r.pos]
	r.pos++
	return v
}

func (r *footerReader) u16() uint16 {
	if r.pos+2 > len(r.data) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v
}

func (r *footerReader) u32() uint32 {
	if r.pos+4 > len(r.data) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *footerReader) u64() uint64 {
	if r.pos+8 > len(r.data) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

func (r *footerReader) strN(n int) string {
	if n < 0 || r.pos+n > len(r.data) {
		r.bad = true
		return ""
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s
}

// decodeFooter parses the directory, assigning global column ordinals in
// footer order.
func decodeFooter(data []byte) ([]*tableMeta, error) {
	r := &footerReader{data: data}
	ntables := int(r.u32())
	if r.bad || ntables < 0 || ntables > 1<<10 {
		return nil, fmt.Errorf("segstore: implausible table count %d in footer", ntables)
	}
	ord := int32(0)
	tables := make([]*tableMeta, 0, ntables)
	for ti := 0; ti < ntables; ti++ {
		t := &tableMeta{name: r.strN(int(r.u16()))}
		ncols := int(r.u32())
		if r.bad || ncols < 0 || ncols > 1<<16 {
			return nil, fmt.Errorf("segstore: table %q: implausible column count %d", t.name, ncols)
		}
		for ci := 0; ci < ncols; ci++ {
			c := &colMeta{table: t.name, name: r.strN(int(r.u16())), ord: ord}
			ord++
			c.sort = colstore.SortKind(r.u8())
			if c.sort > colstore.SecondarySort {
				return nil, fmt.Errorf("segstore: table %q column %q: bad sort kind %d", t.name, c.name, c.sort)
			}
			if hasDict := r.u8(); hasDict == 1 {
				nvals := int(r.u32())
				if r.bad || nvals < 0 || nvals > 1<<24 {
					return nil, fmt.Errorf("segstore: table %q column %q: implausible dictionary size %d", t.name, c.name, nvals)
				}
				vals := make([]string, nvals)
				for i := range vals {
					vals[i] = r.strN(int(r.u32()))
				}
				if r.bad {
					return nil, fmt.Errorf("segstore: table %q column %q: truncated dictionary", t.name, c.name)
				}
				c.dict = compress.BuildDict(vals)
			} else if hasDict != 0 {
				return nil, fmt.Errorf("segstore: table %q column %q: bad dictionary flag %d", t.name, c.name, hasDict)
			}
			nsegs := int(r.u32())
			if r.bad || nsegs < 0 || nsegs > 1<<24 {
				return nil, fmt.Errorf("segstore: table %q column %q: implausible segment count %d", t.name, c.name, nsegs)
			}
			c.segs = make([]segMeta, nsegs)
			for i := range c.segs {
				s := &c.segs[i]
				s.off = r.u64()
				s.plen = r.u64()
				s.cbytes = r.u64()
				s.enc = compress.Encoding(r.u8())
				s.rows = r.u32()
				s.min = int32(r.u32())
				s.max = int32(r.u32())
				s.crc = r.u32()
				if s.enc > compress.BitVec {
					return nil, fmt.Errorf("segstore: table %q column %q segment %d: unknown encoding tag %d", t.name, c.name, i, s.enc)
				}
				// Positional addressing requires full blocks everywhere
				// but the tail.
				if i < nsegs-1 && s.rows != colstore.BlockSize {
					return nil, fmt.Errorf("segstore: table %q column %q segment %d: interior segment has %d rows, want %d", t.name, c.name, i, s.rows, colstore.BlockSize)
				}
			}
			t.cols = append(t.cols, c)
		}
		tables = append(tables, t)
	}
	if r.bad {
		return nil, fmt.Errorf("segstore: truncated footer")
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("segstore: %d trailing bytes after footer directory", len(data)-r.pos)
	}
	return tables, nil
}
