package segstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"repro/internal/colstore"
	"repro/internal/compress"
)

// Store is an open segment file: the parsed footer directory plus the
// buffer pool segments fault through. Zone-map queries answer from the
// directory without I/O; values are read (and CRC-verified, and decoded)
// only when a segment is first acquired, and stay resident until the pool
// evicts them.
type Store struct {
	f      *os.File
	path   string
	sf     float64
	tables map[string]*tableMeta
	order  []string
	cols   []*colMeta // by global ordinal, the pool key namespace
	pool   *Pool
}

// Open opens a segment file, validates its framing and footer checksum, and
// attaches a buffer pool with the given resident-byte budget (<= 0 for
// unbounded).
func Open(path string, memBudget int64) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := open(f, path, memBudget)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func open(f *os.File, path string, memBudget int64) (*Store, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	minSize := int64(len(Magic)+8) + int64(4+8+len(Magic))
	if size < minSize {
		return nil, fmt.Errorf("segstore: %s: file too short (%d bytes) to be a segment store", path, size)
	}

	head := make([]byte, len(Magic)+8)
	if _, err := f.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("segstore: %s: reading header: %w", path, err)
	}
	if string(head[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("segstore: %s: bad magic %q (not a segment store)", path, head[:len(Magic)])
	}
	sf := math.Float64frombits(binary.LittleEndian.Uint64(head[len(Magic):]))

	tail := make([]byte, 4+8+len(Magic))
	if _, err := f.ReadAt(tail, size-int64(len(tail))); err != nil {
		return nil, fmt.Errorf("segstore: %s: reading trailer: %w", path, err)
	}
	if string(tail[12:]) != Magic {
		return nil, fmt.Errorf("segstore: %s: bad trailing magic (file truncated or not a segment store)", path)
	}
	footerCRC := binary.LittleEndian.Uint32(tail[0:4])
	footerLen := binary.LittleEndian.Uint64(tail[4:12])
	footerEnd := size - int64(len(tail))
	if footerLen > uint64(footerEnd-int64(len(head))) {
		return nil, fmt.Errorf("segstore: %s: footer length %d exceeds file size", path, footerLen)
	}
	footer := make([]byte, footerLen)
	if _, err := f.ReadAt(footer, footerEnd-int64(footerLen)); err != nil {
		return nil, fmt.Errorf("segstore: %s: reading footer: %w", path, err)
	}
	if crc := crc32.ChecksumIEEE(footer); crc != footerCRC {
		return nil, fmt.Errorf("segstore: %s: footer checksum mismatch (file corrupt): got %08x want %08x", path, crc, footerCRC)
	}
	metas, err := decodeFooter(footer)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}

	s := &Store{f: f, path: path, sf: sf, tables: map[string]*tableMeta{}}
	for _, t := range metas {
		if _, dup := s.tables[t.name]; dup {
			return nil, fmt.Errorf("segstore: %s: duplicate table %q in footer", path, t.name)
		}
		s.tables[t.name] = t
		s.order = append(s.order, t.name)
		for _, c := range t.cols {
			s.cols = append(s.cols, c)
			// Segment payloads must lie inside the payload region. The
			// footer is untrusted input: check length before offset+length
			// so a crafted plen cannot wrap the sum past the bound.
			payloadEnd := uint64(footerEnd - int64(footerLen))
			for i, seg := range c.segs {
				if seg.plen > payloadEnd || seg.off < uint64(len(head)) || seg.off > payloadEnd-seg.plen {
					return nil, fmt.Errorf("segstore: table %q column %q segment %d: payload [%d,+%d) outside file payload region", c.table, c.name, i, seg.off, seg.plen)
				}
			}
		}
	}
	s.pool = NewPool(memBudget, s.loadSegment)
	return s, nil
}

// SF returns the scale factor recorded by the writer.
func (s *Store) SF() float64 { return s.sf }

// Path returns the file path the store was opened from.
func (s *Store) Path() string { return s.path }

// TableNames returns the stored table names in file order.
func (s *Store) TableNames() []string { return s.order }

// NumSegments returns the total segment count across all columns.
func (s *Store) NumSegments() int {
	n := 0
	for _, c := range s.cols {
		n += len(c.segs)
	}
	return n
}

// TableSegments returns the segment count of one table (0 when absent).
func (s *Store) TableSegments(name string) int {
	t, ok := s.tables[name]
	if !ok {
		return 0
	}
	n := 0
	for _, c := range t.cols {
		n += len(c.segs)
	}
	return n
}

// CompressedBytes returns the total on-disk payload bytes.
func (s *Store) CompressedBytes() int64 {
	var n int64
	for _, c := range s.cols {
		for _, seg := range c.segs {
			n += int64(seg.plen)
		}
	}
	return n
}

// RawBytes returns the decoded (4 bytes/value) footprint of all columns —
// the memory a wholesale load would need, and the yardstick -mem-budget is
// judged against.
func (s *Store) RawBytes() int64 {
	var n int64
	for _, c := range s.cols {
		for _, seg := range c.segs {
			n += int64(seg.rows) * 4
		}
	}
	return n
}

// Pool returns the store's buffer pool (statistics, budget).
func (s *Store) Pool() *Pool { return s.pool }

// Close closes the underlying file. Outstanding pinned segments remain
// usable (they are decoded in memory); further misses will fail.
func (s *Store) Close() error { return s.f.Close() }

// Table materializes the named table as colstore columns backed by the
// store's buffer pool.
func (s *Store) Table(name string) (*colstore.Table, error) {
	tm, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("segstore: %s has no table %q (tables: %v)", s.path, name, s.order)
	}
	t := colstore.NewTable(name)
	for _, cm := range tm.cols {
		t.AddColumn(colstore.NewSourcedColumn(cm.name, cm.dict, cm.sort, &colSource{store: s, meta: cm}))
	}
	return t, nil
}

// loadSegment is the pool's fetch function: read the payload, verify its
// CRC, decode the block.
func (s *Store) loadSegment(k SegKey) (compress.IntBlock, int64, error) {
	if int(k.Col) >= len(s.cols) {
		return nil, 0, fmt.Errorf("segstore: column ordinal %d out of range", k.Col)
	}
	cm := s.cols[k.Col]
	if int(k.Seg) >= len(cm.segs) {
		return nil, 0, fmt.Errorf("segstore: table %q column %q: segment %d out of range", cm.table, cm.name, k.Seg)
	}
	seg := cm.segs[k.Seg]
	payload := make([]byte, seg.plen)
	if _, err := s.f.ReadAt(payload, int64(seg.off)); err != nil {
		return nil, 0, fmt.Errorf("segstore: table %q column %q segment %d: reading payload: %w", cm.table, cm.name, k.Seg, err)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != seg.crc {
		return nil, 0, fmt.Errorf("segstore: table %q column %q segment %d: checksum mismatch (file corrupt): got %08x want %08x", cm.table, cm.name, k.Seg, crc, seg.crc)
	}
	blk, err := compress.DecodeBlock(seg.enc, int(seg.rows), payload)
	if err != nil {
		return nil, 0, fmt.Errorf("segstore: table %q column %q segment %d: %w", cm.table, cm.name, k.Seg, err)
	}
	return blk, int64(seg.plen), nil
}

// colSource adapts one column's footer metadata plus the shared pool to
// colstore.ColumnSource.
type colSource struct {
	store *Store
	meta  *colMeta
}

// NumSegments implements colstore.ColumnSource.
func (c *colSource) NumSegments() int { return len(c.meta.segs) }

// SegRows implements colstore.ColumnSource.
func (c *colSource) SegRows(i int) int { return int(c.meta.segs[i].rows) }

// SegMinMax implements colstore.ColumnSource from the persisted zone map.
func (c *colSource) SegMinMax(i int) (int32, int32) {
	return c.meta.segs[i].min, c.meta.segs[i].max
}

// SegEncoding implements colstore.ColumnSource.
func (c *colSource) SegEncoding(i int) compress.Encoding { return c.meta.segs[i].enc }

// SegBytes implements colstore.ColumnSource.
func (c *colSource) SegBytes(i int) int64 { return int64(c.meta.segs[i].cbytes) }

// Acquire implements colstore.ColumnSource through the buffer pool.
func (c *colSource) Acquire(i int) (compress.IntBlock, func(), error) {
	return c.store.pool.Acquire(SegKey{Col: c.meta.ord, Seg: int32(i)})
}

// IsSegmentFile reports whether the file at path starts with the segment
// store magic.
func IsSegmentFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	head := make([]byte, len(Magic))
	if _, err := f.ReadAt(head, 0); err != nil {
		return false, nil // too short to be either format; let the v1 loader report
	}
	return string(head) == Magic, nil
}
