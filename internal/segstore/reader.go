package segstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/colstore"
	"repro/internal/compress"
)

// Store is an open segment file: the parsed footer directory plus the
// buffer pool segments fault through. Zone-map queries answer from the
// directory without I/O; values are read (and CRC-verified, and decoded)
// only when a segment is first acquired, and stay resident until the pool
// evicts them.
//
// A store is no longer immutable after open: Append (append.go) grows
// tables with new segments under mu. Readers that materialized tables
// before an append keep their snapshot — their column sources hold the
// pre-append metadata, whose payload bytes are never overwritten — while
// Table calls after the append see the grown directory.
type Store struct {
	f        *os.File
	path     string
	sf       float64
	writable bool
	// recovered marks that Open found a torn/corrupt tail and fell back to
	// the previous valid trailer (rows past it were discarded);
	// recoveryNote is the human-readable account of what was discarded,
	// kept on the store so serving layers can surface it (e.g. on /stats)
	// after the open-time log line has scrolled away.
	recovered    bool
	recoveryNote string

	// mu guards the live directory (tables, cols, phys, payloadEnd).
	// Snapshots handed out by Table hold their own colMeta pointers and
	// are unaffected by later directory swaps.
	mu     sync.RWMutex
	tables map[string]*tableMeta
	order  []string
	cols   []*colMeta // by global ordinal, the pool key namespace
	// phys holds every physical segment ever written, per column ordinal,
	// indexed by pool frame id (segMeta.pid). Append-only: replaced tail
	// segments stay addressable for snapshots that still reference them.
	phys [][]segMeta
	// writeEnd is the offset just past the current trailer — where the
	// next append writes. Appends never overwrite earlier bytes (payloads,
	// superseded footers, the live footer): the previous trailer stays
	// durable until the new one is, which is what makes a torn append
	// recoverable.
	writeEnd int64
	// appendMu serializes appends; separate from mu so readers are never
	// blocked behind append file I/O.
	appendMu sync.Mutex

	// syncs counts fsyncs issued by the append commit protocol (two per
	// append: payload+footer, then trailer). Observability only.
	syncs atomic.Int64

	pool *Pool
}

// Open opens a segment file, validates its framing and footer checksum, and
// attaches a buffer pool with the given resident-byte budget (<= 0 for
// unbounded). The file is opened read-write when the filesystem allows, so
// the append path (Append) works; a read-only file still opens, with
// appends rejected. A bounded budget smaller than the largest single
// segment is rejected outright: the pool could never make such a segment
// resident without exceeding the budget, and a scan touching it would churn
// every other frame out on each fetch.
func Open(path string, memBudget int64) (*Store, error) {
	return OpenWith(path, OpenOptions{MemBudget: memBudget})
}

// OpenOptions parameterizes OpenWith beyond the budget.
type OpenOptions struct {
	// MemBudget is the pool's resident-byte budget (<= 0 for unbounded).
	MemBudget int64
	// Log receives open-time diagnostics that demand operator attention —
	// today, the torn-tail recovery notice. nil falls back to os.Stderr,
	// which is right for CLI tools; daemons should inject their own sink
	// (and can read Store.RecoveryNote afterwards regardless).
	Log func(msg string)
}

// OpenWith is Open with an injectable diagnostics sink: library code never
// writes to os.Stderr unless the caller left Log nil.
func OpenWith(path string, opts OpenOptions) (*Store, error) {
	writable := true
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		writable = false
		f, err = os.Open(path)
		if err != nil {
			return nil, err
		}
	}
	logf := opts.Log
	if logf == nil {
		//lint:ignore nologprint this closure IS the injectable logger's documented default sink
		logf = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}
	s, err := open(f, path, opts.MemBudget, writable, logf)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	s.writable = writable
	return s, nil
}

func open(f *os.File, path string, memBudget int64, writable bool, logf func(msg string)) (*Store, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	minSize := int64(len(Magic)+8) + int64(4+8+len(Magic))
	if size < minSize {
		return nil, fmt.Errorf("segstore: %s: file too short (%d bytes) to be a segment store", path, size)
	}

	head := make([]byte, len(Magic)+8)
	if _, err := f.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("segstore: %s: reading header: %w", path, err)
	}
	if string(head[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("segstore: %s: bad magic %q (not a segment store)", path, head[:len(Magic)])
	}
	sf := math.Float64frombits(binary.LittleEndian.Uint64(head[len(Magic):]))

	footer, contentEnd, recovered, err := locateFooter(f, path, size, int64(len(head)))
	if err != nil {
		return nil, err
	}
	var recoveryNote string
	if recovered {
		// Recovery must be loud: the discarded tail is either a torn
		// append (rows of one interrupted tuple-mover pass) or trailing
		// corruption of a committed one — either way the operator should
		// know rows past the recovered trailer are gone. The note goes to
		// the caller's sink (stderr for CLI tools) and is retained on the
		// store for serving layers to surface.
		recoveryNote = fmt.Sprintf("segstore: %s: invalid trailer at EOF; recovered the previous valid directory (%d trailing bytes discarded — a torn or corrupted append)", path, size-contentEnd)
		logf(recoveryNote)
		if writable {
			// Self-heal: drop the torn tail so the valid trailer sits at
			// EOF again and future appends start from a clean state.
			if err := f.Truncate(contentEnd); err != nil {
				return nil, fmt.Errorf("segstore: %s: trimming torn append tail: %w", path, err)
			}
		}
	}
	metas, err := decodeFooter(footer)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}

	s := &Store{f: f, path: path, sf: sf, tables: map[string]*tableMeta{}}
	s.writeEnd = contentEnd
	s.recovered = recovered
	s.recoveryNote = recoveryNote
	payloadRegionEnd := contentEnd - int64(4+8+len(Magic)) - int64(len(footer))
	var maxPlen int64
	for _, t := range metas {
		if _, dup := s.tables[t.name]; dup {
			return nil, fmt.Errorf("segstore: %s: duplicate table %q in footer", path, t.name)
		}
		s.tables[t.name] = t
		s.order = append(s.order, t.name)
		for _, c := range t.cols {
			s.cols = append(s.cols, c)
			// Segment payloads must lie inside the payload region. The
			// footer is untrusted input: check length before offset+length
			// so a crafted plen cannot wrap the sum past the bound.
			payloadEnd := uint64(payloadRegionEnd)
			for i := range c.segs {
				seg := &c.segs[i]
				if seg.plen > payloadEnd || seg.off < uint64(len(head)) || seg.off > payloadEnd-seg.plen {
					return nil, fmt.Errorf("segstore: table %q column %q segment %d: payload [%d,+%d) outside file payload region", c.table, c.name, i, seg.off, seg.plen)
				}
				seg.pid = int32(i)
				if int64(seg.plen) > maxPlen {
					maxPlen = int64(seg.plen)
				}
			}
			s.phys = append(s.phys, append([]segMeta(nil), c.segs...))
		}
	}
	if memBudget > 0 && memBudget < maxPlen {
		return nil, fmt.Errorf("segstore: %s: memory budget %d B is smaller than the largest segment (%d B); the pool could never hold it without evicting everything else on each fetch — raise the budget to at least %d B", path, memBudget, maxPlen, maxPlen)
	}
	s.pool = NewPool(memBudget, s.loadSegment)
	return s, nil
}

// locateFooter finds the newest valid footer: normally the trailer at EOF,
// but after a torn append (crash between the payload write starting and
// the new trailer landing) the tail is garbage while every earlier byte —
// including the previous footer and trailer, which appends never overwrite
// — is intact. The backward scan finds that previous trailer, so a crash
// costs only the rows of the interrupted append, never the file. Returns
// the footer bytes, the offset just past its trailing magic, and whether
// recovery ran.
func locateFooter(f *os.File, path string, size, headLen int64) ([]byte, int64, bool, error) {
	trailerLen := int64(4 + 8 + len(Magic))
	readAt := func(end int64) ([]byte, error) {
		tail := make([]byte, trailerLen)
		if _, err := f.ReadAt(tail, end-trailerLen); err != nil {
			return nil, fmt.Errorf("segstore: %s: reading trailer: %w", path, err)
		}
		if string(tail[12:]) != Magic {
			return nil, fmt.Errorf("segstore: %s: bad trailing magic (file truncated or not a segment store)", path)
		}
		footerCRC := binary.LittleEndian.Uint32(tail[0:4])
		footerLen := binary.LittleEndian.Uint64(tail[4:12])
		footerEnd := end - trailerLen
		if footerLen > uint64(footerEnd-headLen) {
			return nil, fmt.Errorf("segstore: %s: footer length %d exceeds file size", path, footerLen)
		}
		footer := make([]byte, footerLen)
		if _, err := f.ReadAt(footer, footerEnd-int64(footerLen)); err != nil {
			return nil, fmt.Errorf("segstore: %s: reading footer: %w", path, err)
		}
		if crc := crc32.ChecksumIEEE(footer); crc != footerCRC {
			return nil, fmt.Errorf("segstore: %s: footer checksum mismatch (file corrupt): got %08x want %08x", path, crc, footerCRC)
		}
		return footer, nil
	}

	footer, eofErr := readAt(size)
	if eofErr == nil {
		return footer, size, false, nil
	}
	// Scan backward for the most recent earlier trailer. Candidates are
	// occurrences of the magic whose preceding CRC+length validate a
	// footer; a chance byte collision inside payload data is rejected by
	// the checksum.
	const chunk = 1 << 20
	for hi := size - 1; hi > headLen+trailerLen; {
		lo := hi - chunk
		if lo < headLen {
			lo = headLen
		}
		buf := make([]byte, hi-lo+int64(len(Magic)))
		if _, err := f.ReadAt(buf[:hi-lo], lo); err != nil {
			break
		}
		if hi < size {
			// Overlap so a magic spanning the chunk boundary is seen.
			if _, err := f.ReadAt(buf[hi-lo:], hi); err != nil {
				buf = buf[:hi-lo]
			}
		} else {
			buf = buf[:hi-lo]
		}
		for off := int64(len(buf)) - int64(len(Magic)); off >= 0; off-- {
			if string(buf[off:off+int64(len(Magic))]) != Magic {
				continue
			}
			end := lo + off + int64(len(Magic))
			if end >= size || end < headLen+trailerLen {
				continue // the EOF trailer already failed; need an earlier one
			}
			if footer, err := readAt(end); err == nil {
				return footer, end, true, nil
			}
		}
		hi = lo
	}
	return nil, 0, false, eofErr
}

// SF returns the scale factor recorded by the writer.
func (s *Store) SF() float64 { return s.sf }

// Path returns the file path the store was opened from.
func (s *Store) Path() string { return s.path }

// Writable reports whether the file was opened read-write (the append path
// requires it).
func (s *Store) Writable() bool { return s.writable }

// Recovered reports whether Open had to discard a torn or corrupted tail
// and fall back to the previous valid directory.
func (s *Store) Recovered() bool { return s.recovered }

// RecoveryNote returns the torn-tail recovery diagnostic from Open, or ""
// if the file opened clean. Serving layers surface it on /stats so the
// evidence of a repaired append outlives the daemon's startup log.
func (s *Store) RecoveryNote() string { return s.recoveryNote }

// TableNames returns the stored table names in file order.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...)
}

// NumSegments returns the total live segment count across all columns.
func (s *Store) NumSegments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, c := range s.cols {
		n += len(c.segs)
	}
	return n
}

// TableSegments returns the live segment count of one table (0 when absent).
func (s *Store) TableSegments(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return 0
	}
	n := 0
	for _, c := range t.cols {
		n += len(c.segs)
	}
	return n
}

// CompressedBytes returns the total live on-disk payload bytes.
func (s *Store) CompressedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, c := range s.cols {
		for _, seg := range c.segs {
			n += int64(seg.plen)
		}
	}
	return n
}

// RawBytes returns the decoded (4 bytes/value) footprint of all columns —
// the memory a wholesale eagerly-decoded load would need. Note the buffer
// pool never holds segments in this form: frames cache wire-native blocks
// and the -mem-budget is charged compressed payload bytes (CompressedBytes,
// as PoolStats.Resident reports), so a budget far below RawBytes can still
// keep the hot working set resident. RawBytes is the denominator for the
// pool's effective compression ratio (see PoolStats.ResidentLogical).
func (s *Store) RawBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, c := range s.cols {
		for _, seg := range c.segs {
			n += int64(seg.rows) * 4
		}
	}
	return n
}

// Pool returns the store's buffer pool (statistics, budget).
func (s *Store) Pool() *Pool { return s.pool }

// Syncs reports how many fsyncs the append commit protocol has issued on
// this store since open.
func (s *Store) Syncs() int64 { return s.syncs.Load() }

// Close closes the underlying file. Outstanding pinned segments remain
// usable (they are decoded in memory); further misses will fail.
func (s *Store) Close() error { return s.f.Close() }

// Table materializes the named table as colstore columns backed by the
// store's buffer pool. The returned table is a snapshot of the directory at
// call time: appends that land later do not grow it (re-materialize to see
// them).
func (s *Store) Table(name string) (*colstore.Table, error) {
	s.mu.RLock()
	tm, ok := s.tables[name]
	if !ok {
		order := append([]string(nil), s.order...)
		s.mu.RUnlock()
		return nil, fmt.Errorf("segstore: %s has no table %q (tables: %v)", s.path, name, order)
	}
	cols := append([]*colMeta(nil), tm.cols...)
	s.mu.RUnlock()
	t := colstore.NewTable(name)
	for _, cm := range cols {
		t.AddColumn(colstore.NewSourcedColumn(cm.name, cm.dict, cm.sort, &colSource{store: s, meta: cm}))
	}
	return t, nil
}

// physSeg resolves one physical segment by (column ordinal, pool frame id).
func (s *Store) physSeg(col, pid int32) (segMeta, string, string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(col) >= len(s.cols) {
		return segMeta{}, "", "", fmt.Errorf("segstore: column ordinal %d out of range", col)
	}
	cm := s.cols[col]
	if int(pid) >= len(s.phys[col]) {
		return segMeta{}, "", "", fmt.Errorf("segstore: table %q column %q: segment frame %d out of range", cm.table, cm.name, pid)
	}
	return s.phys[col][pid], cm.table, cm.name, nil
}

// loadSegment is the pool's fetch function: read the payload, verify its
// CRC, decode the block. The key's Seg component is the physical frame id,
// so segments from superseded directory snapshots (a replaced partial tail)
// remain loadable for readers that still hold them.
func (s *Store) loadSegment(k SegKey) (compress.IntBlock, int64, error) {
	seg, table, name, err := s.physSeg(k.Col, k.Seg)
	if err != nil {
		return nil, 0, err
	}
	blk, err := s.readSeg(seg, table, name)
	if err != nil {
		return nil, 0, err
	}
	return blk, int64(seg.plen), nil
}

// readSeg reads and decodes one physical segment directly from the file.
func (s *Store) readSeg(seg segMeta, table, name string) (compress.IntBlock, error) {
	payload := make([]byte, seg.plen)
	if _, err := s.f.ReadAt(payload, int64(seg.off)); err != nil {
		return nil, fmt.Errorf("segstore: table %q column %q segment %d: reading payload: %w", table, name, seg.pid, err)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != seg.crc {
		return nil, fmt.Errorf("segstore: table %q column %q segment %d: checksum mismatch (file corrupt): got %08x want %08x", table, name, seg.pid, crc, seg.crc)
	}
	blk, err := compress.DecodeBlock(seg.enc, int(seg.rows), payload)
	if err != nil {
		return nil, fmt.Errorf("segstore: table %q column %q segment %d: %w", table, name, seg.pid, err)
	}
	return blk, nil
}

// colSource adapts one column's footer metadata plus the shared pool to
// colstore.ColumnSource. The meta pointer is a directory snapshot:
// immutable, unaffected by appends that happen after it was taken.
type colSource struct {
	store *Store
	meta  *colMeta
}

// NumSegments implements colstore.ColumnSource.
func (c *colSource) NumSegments() int { return len(c.meta.segs) }

// SegRows implements colstore.ColumnSource.
func (c *colSource) SegRows(i int) int { return int(c.meta.segs[i].rows) }

// SegMinMax implements colstore.ColumnSource from the persisted zone map.
func (c *colSource) SegMinMax(i int) (int32, int32) {
	return c.meta.segs[i].min, c.meta.segs[i].max
}

// SegEncoding implements colstore.ColumnSource.
func (c *colSource) SegEncoding(i int) compress.Encoding { return c.meta.segs[i].enc }

// SegBytes implements colstore.ColumnSource.
func (c *colSource) SegBytes(i int) int64 { return int64(c.meta.segs[i].cbytes) }

// Acquire implements colstore.ColumnSource through the buffer pool, keyed
// by the segment's physical frame id.
func (c *colSource) Acquire(i int) (compress.IntBlock, func(), error) {
	return c.store.pool.Acquire(SegKey{Col: c.meta.ord, Seg: c.meta.segs[i].pid})
}

// IsSegmentFile reports whether the file at path starts with the segment
// store magic.
func IsSegmentFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	head := make([]byte, len(Magic))
	if _, err := f.ReadAt(head, 0); err != nil {
		return false, nil // too short to be either format; let the v1 loader report
	}
	return string(head) == Magic, nil
}
