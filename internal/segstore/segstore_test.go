package segstore

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/colstore"
	"repro/internal/compress"
	"repro/internal/iosim"
)

// buildTestTable makes a table with enough rows for several segments per
// column: a sorted column (zone-map friendly), a low-cardinality column, a
// near-monotonic column, and a dictionary column.
func buildTestTable(t *testing.T, rows int) *colstore.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	sorted := make([]int32, rows)
	lowCard := make([]int32, rows)
	mono := make([]int32, rows)
	strs := make([]string, rows)
	names := []string{"ASIA", "EUROPE", "AMERICA", "AFRICA", "MIDDLE EAST"}
	v := int32(0)
	for i := range sorted {
		sorted[i] = int32(i / 3)
		lowCard[i] = rng.Int31n(4)
		v += rng.Int31n(50)
		mono[i] = v
		strs[i] = names[rng.Intn(len(names))]
	}
	dict := compress.BuildDict(strs)
	tab := colstore.NewTable("t")
	tab.AddColumn(colstore.NewColumn("sorted", sorted, nil, colstore.PrimarySort, true))
	tab.AddColumn(colstore.NewColumn("lowcard", lowCard, nil, colstore.Unsorted, true))
	tab.AddColumn(colstore.NewColumn("mono", mono, nil, colstore.Unsorted, true))
	tab.AddColumn(colstore.NewColumn("region", dict.Encode(strs, nil), dict, colstore.Unsorted, true))
	return tab
}

func saveTestStore(t *testing.T, tab *colstore.Table, budget int64) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.seg")
	if err := Save(path, 0.5, []*colstore.Table{tab}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	st, err := Open(path, budget)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st, path
}

// TestRoundTrip writes a multi-segment table and verifies every column
// decodes bit-identically through the pool, with zone maps, encodings, sort
// kinds and the dictionary preserved.
func TestRoundTrip(t *testing.T) {
	rows := 3*colstore.BlockSize + 1234
	tab := buildTestTable(t, rows)
	st, _ := saveTestStore(t, tab, 0)

	if st.SF() != 0.5 {
		t.Errorf("SF = %v want 0.5", st.SF())
	}
	got, err := st.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != rows {
		t.Fatalf("NumRows = %d want %d", got.NumRows(), rows)
	}
	for _, name := range tab.ColumnNames() {
		want := tab.MustColumn(name)
		gcol := got.MustColumn(name)
		if gcol.Sorted != want.Sorted {
			t.Errorf("%s: sort kind %d want %d", name, gcol.Sorted, want.Sorted)
		}
		if (gcol.Dict == nil) != (want.Dict == nil) {
			t.Fatalf("%s: dictionary presence differs", name)
		}
		if gcol.Dict != nil && gcol.Dict.Size() != want.Dict.Size() {
			t.Errorf("%s: dictionary size %d want %d", name, gcol.Dict.Size(), want.Dict.Size())
		}
		if gcol.NumBlocks() != want.NumBlocks() {
			t.Fatalf("%s: %d blocks want %d", name, gcol.NumBlocks(), want.NumBlocks())
		}
		for bi := 0; bi < want.NumBlocks(); bi++ {
			wmn, wmx := want.BlockMinMax(bi)
			gmn, gmx := gcol.BlockMinMax(bi)
			if wmn != gmn || wmx != gmx {
				t.Errorf("%s block %d: zone map [%d,%d] want [%d,%d]", name, bi, gmn, gmx, wmn, wmx)
			}
			if gcol.BlockEncoding(bi) != want.BlockEncoding(bi) {
				t.Errorf("%s block %d: encoding %v want %v", name, bi, gcol.BlockEncoding(bi), want.BlockEncoding(bi))
			}
			if gcol.BlockBytes(bi) != want.BlockBytes(bi) {
				t.Errorf("%s block %d: bytes %d want %d", name, bi, gcol.BlockBytes(bi), want.BlockBytes(bi))
			}
		}
		wv := want.DecodeAll(nil, nil)
		gv := gcol.DecodeAll(nil, nil)
		for i := range wv {
			if wv[i] != gv[i] {
				t.Fatalf("%s: value %d = %d want %d", name, i, gv[i], wv[i])
			}
		}
	}
}

// TestLogicalIOMatchesResident pins the accounting split: a filter over a
// pool-backed column must charge exactly the logical I/O the resident
// column charges, regardless of pool hits or misses.
func TestLogicalIOMatchesResident(t *testing.T) {
	tab := buildTestTable(t, 2*colstore.BlockSize+99)
	st, _ := saveTestStore(t, tab, 0)
	got, err := st.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range tab.ColumnNames() {
		var a, b iosim.Stats
		p := compress.Between(1, 3)
		wantPos := tab.MustColumn(name).Filter(p, &a)
		gotPos := got.MustColumn(name).Filter(p, &b)
		if a != b {
			t.Errorf("%s: logical I/O %+v want %+v", name, b, a)
		}
		if wantPos.Len() != gotPos.Len() {
			t.Errorf("%s: %d matches want %d", name, gotPos.Len(), wantPos.Len())
		}
	}
}

// TestZoneMapPruning runs a selective range filter over the sorted column
// and requires interior/excluded segments to never be fetched: the pool
// must record fewer misses than the column has segments.
func TestZoneMapPruning(t *testing.T) {
	tab := buildTestTable(t, 5*colstore.BlockSize)
	st, _ := saveTestStore(t, tab, 0)
	got, err := st.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	col := got.MustColumn("sorted")
	if col.NumBlocks() != 5 {
		t.Fatalf("want 5 segments, got %d", col.NumBlocks())
	}
	// Values are i/3 ascending: pick a range inside segment 2 only.
	lo := int32(2*colstore.BlockSize/3) + 10
	pos := col.Filter(compress.Between(lo, lo+100), nil)
	if pos.Len() == 0 {
		t.Fatal("selective filter matched nothing")
	}
	ps := st.Pool().Stats()
	if ps.Misses >= int64(col.NumBlocks()) {
		t.Errorf("pruning ineffective: %d segment fetches for a 1-of-%d-segment range", ps.Misses, col.NumBlocks())
	}
	if ps.Misses == 0 {
		t.Error("expected at least the boundary segment to be fetched")
	}
}

// TestCorruptPayloadDetected flips one byte in a segment payload; the next
// acquire of that segment must fail with an error naming table, column and
// segment, and the executor-facing column must panic rather than return
// wrong values.
func TestCorruptPayloadDetected(t *testing.T) {
	tab := buildTestTable(t, colstore.BlockSize+50)
	st, path := saveTestStore(t, tab, 0)
	st.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(Magic)+8+100] ^= 0xFF // inside the first segment payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(path, 0) // footer is intact, open succeeds
	if err != nil {
		t.Fatalf("Open after payload corruption should succeed (lazy reads): %v", err)
	}
	defer st2.Close()
	_, _, err = st2.loadSegment(SegKey{Col: 0, Seg: 0})
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") ||
		!strings.Contains(err.Error(), `column "sorted"`) {
		t.Fatalf("corrupt payload error = %v", err)
	}

	got, err := st2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reading a corrupt segment through a column should panic")
		}
	}()
	got.MustColumn("sorted").DecodeAll(nil, nil)
}

// TestCorruptFraming exercises every framing error path: short file, bad
// head magic, bad tail magic, footer checksum, truncated footer length.
func TestCorruptFraming(t *testing.T) {
	tab := buildTestTable(t, 500)
	_, path := saveTestStore(t, tab, 0)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	write := func(b []byte) string {
		p := filepath.Join(t.TempDir(), "bad.seg")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr string
	}{
		{"short", func(b []byte) []byte { return b[:10] }, "too short"},
		{"head-magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, "bad magic"},
		{"tail-magic", func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }, "bad trailing magic"},
		{"footer-crc", func(b []byte) []byte { b[len(b)-30] ^= 0xFF; return b }, "footer checksum mismatch"},
		{"footer-len", func(b []byte) []byte {
			b[len(b)-9] = 0xFF // blow up the footer length field
			return b
		}, "footer length"},
		{"truncated-tail", func(b []byte) []byte { return b[:len(b)-4] }, "bad trailing magic"},
	}
	for _, tc := range cases {
		buf := append([]byte(nil), raw...)
		_, err := Open(write(tc.mutate(buf)), 0)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestSegmentBoundsOverflowRejected crafts a footer whose first segment
// carries off+plen chosen to wrap uint64 arithmetic back inside the payload
// region (with the footer CRC recomputed so only the bounds check can
// object). Open must reject it instead of deferring to a fatal huge
// allocation at first acquire.
func TestSegmentBoundsOverflowRejected(t *testing.T) {
	tab := buildTestTable(t, 500)
	_, path := saveTestStore(t, tab, 0)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	footerLen := binary.LittleEndian.Uint64(raw[len(raw)-16 : len(raw)-8])
	footerStart := len(raw) - 20 - int(footerLen)
	// Walk to the first column's first segment entry: ntables u32,
	// table nameLen u16 + "t", ncols u32, col nameLen u16 + "sorted",
	// sort u8, dict flag u8, nsegs u32 -> off u64, plen u64.
	segOff := footerStart + 4 + 2 + 1 + 4 + 2 + 6 + 1 + 1 + 4
	binary.LittleEndian.PutUint64(raw[segOff:], 1<<63)       // off
	binary.LittleEndian.PutUint64(raw[segOff+8:], 1<<63+200) // plen: sum wraps small
	footer := raw[footerStart : footerStart+int(footerLen)]
	binary.LittleEndian.PutUint32(raw[len(raw)-20:], crc32.ChecksumIEEE(footer))
	bad := filepath.Join(t.TempDir(), "overflow.seg")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad, 0); err == nil || !strings.Contains(err.Error(), "outside file payload region") {
		t.Fatalf("overflowing segment bounds accepted: err = %v", err)
	}
}

// TestSaveAtomic verifies a failed save leaves no temp file and Save is
// atomic.
func TestSaveAtomic(t *testing.T) {
	tab := buildTestTable(t, 100)
	path := filepath.Join(t.TempDir(), "x.seg")
	if err := Save(path, 0.1, []*colstore.Table{tab}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

// TestIsSegmentFile distinguishes the two on-disk formats.
func TestIsSegmentFile(t *testing.T) {
	tab := buildTestTable(t, 100)
	_, path := saveTestStore(t, tab, 0)
	if ok, err := IsSegmentFile(path); err != nil || !ok {
		t.Fatalf("IsSegmentFile(seg) = %v, %v", ok, err)
	}
	other := filepath.Join(t.TempDir(), "v1.dat")
	if err := os.WriteFile(other, []byte("SSBREPR1 something"), 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, err := IsSegmentFile(other); err != nil || ok {
		t.Fatalf("IsSegmentFile(v1) = %v, %v", ok, err)
	}
}
