package segstore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/compress"
)

// testFetcher serves synthetic 100-byte plain segments and counts fetches.
type testFetcher struct {
	mu      sync.Mutex
	fetches map[SegKey]int
	fail    map[SegKey]bool
}

func newTestFetcher() *testFetcher {
	return &testFetcher{fetches: map[SegKey]int{}, fail: map[SegKey]bool{}}
}

func (f *testFetcher) fetch(k SegKey) (compress.IntBlock, int64, error) {
	f.mu.Lock()
	f.fetches[k]++
	failing := f.fail[k]
	f.mu.Unlock()
	if failing {
		return nil, 0, fmt.Errorf("synthetic read error for %v", k)
	}
	vals := make([]int32, 25) // 100 bytes plain
	for i := range vals {
		vals[i] = k.Col*1000 + k.Seg
	}
	return compress.NewPlainBlock(vals), 100, nil
}

// TestPoolHitMiss verifies hit/miss accounting and that a resident segment
// is served without refetching.
func TestPoolHitMiss(t *testing.T) {
	f := newTestFetcher()
	p := NewPool(0, f.fetch)
	for i := 0; i < 3; i++ {
		blk, release, err := p.Acquire(SegKey{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		if blk.Get(0) != 1002 {
			t.Fatalf("wrong block content %d", blk.Get(0))
		}
		release()
	}
	st := p.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.BytesRead != 100 {
		t.Fatalf("stats = %+v, want 1 miss / 2 hits / 100 bytes", st)
	}
	if st.IO.BytesRead != 100 || st.IO.Seeks != 1 {
		t.Fatalf("iosim accounting = %+v, want 100 bytes / 1 seek", st.IO)
	}
}

// TestPoolBudgetEviction acquires more segments than the budget holds and
// checks the clock keeps residency at or under budget, with evictions
// recorded and re-acquire refetching.
func TestPoolBudgetEviction(t *testing.T) {
	f := newTestFetcher()
	p := NewPool(250, f.fetch) // room for 2 of the 100-byte segments
	for seg := int32(0); seg < 5; seg++ {
		_, release, err := p.Acquire(SegKey{0, seg})
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	st := p.Stats()
	if st.Resident > 250 {
		t.Fatalf("resident %d exceeds budget with nothing pinned", st.Resident)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions under a 2-segment budget after 5 distinct segments")
	}
	if st.Misses != 5 {
		t.Fatalf("misses = %d want 5", st.Misses)
	}
	// Seg 0 was evicted; re-acquiring must refetch.
	if _, release, err := p.Acquire(SegKey{0, 0}); err != nil {
		t.Fatal(err)
	} else {
		release()
	}
	f.mu.Lock()
	n := f.fetches[SegKey{0, 0}]
	f.mu.Unlock()
	if n != 2 {
		t.Fatalf("seg 0 fetched %d times, want 2 (evicted then refetched)", n)
	}
}

// TestPoolPinnedNotEvicted pins segments past the budget: residency may
// overshoot, but no pinned frame may be dropped.
func TestPoolPinnedNotEvicted(t *testing.T) {
	f := newTestFetcher()
	p := NewPool(150, f.fetch)
	var releases []func()
	var blks []compress.IntBlock
	for seg := int32(0); seg < 4; seg++ {
		blk, release, err := p.Acquire(SegKey{0, seg})
		if err != nil {
			t.Fatal(err)
		}
		blks = append(blks, blk)
		releases = append(releases, release)
	}
	st := p.Stats()
	if st.Evictions != 0 {
		t.Fatalf("evicted %d pinned frames", st.Evictions)
	}
	if st.Resident != 400 {
		t.Fatalf("resident = %d want 400 (all pinned, over budget)", st.Resident)
	}
	for seg, blk := range blks {
		if blk.Get(0) != int32(seg) {
			t.Fatalf("pinned block %d corrupted", seg)
		}
	}
	for _, r := range releases {
		r()
	}
	// Next acquire triggers eviction back under budget.
	_, release, err := p.Acquire(SegKey{0, 9})
	if err != nil {
		t.Fatal(err)
	}
	release()
	if st := p.Stats(); st.Resident > 150 {
		t.Fatalf("resident %d after unpinning exceeds budget", st.Resident)
	}
}

// TestPoolFetchError propagates errors, leaves no residue, and allows
// retry.
func TestPoolFetchError(t *testing.T) {
	f := newTestFetcher()
	k := SegKey{3, 4}
	f.fail[k] = true
	p := NewPool(0, f.fetch)
	if _, _, err := p.Acquire(k); err == nil {
		t.Fatal("fetch error not propagated")
	}
	f.mu.Lock()
	f.fail[k] = false
	f.mu.Unlock()
	blk, release, err := p.Acquire(k)
	if err != nil {
		t.Fatalf("retry after failed fetch: %v", err)
	}
	if blk.Get(0) != 3004 {
		t.Fatal("retry returned wrong block")
	}
	release()
	if st := p.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d want 2 (failed + retry)", st.Misses)
	}
}

// TestPoolConcurrent hammers the pool from many goroutines under a tight
// budget; run with -race. Every acquire must observe its own segment's
// values.
func TestPoolConcurrent(t *testing.T) {
	f := newTestFetcher()
	p := NewPool(500, f.fetch)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := SegKey{Col: int32(i % 3), Seg: int32((i * 7) % 11)}
				blk, release, err := p.Acquire(k)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if got := blk.Get(0); got != k.Col*1000+k.Seg {
					t.Errorf("goroutine %d: block %v holds %d", g, k, got)
					release()
					return
				}
				release()
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Hits+st.Misses != 8*300 {
		t.Fatalf("hits+misses = %d want %d", st.Hits+st.Misses, 8*300)
	}
	if st.Resident > 500 {
		t.Fatalf("resident %d over budget after all releases", st.Resident)
	}
}

// TestPoolAcquireResetStatsRace hammers Acquire, Reset and Stats from many
// goroutines at once under a budget tight enough to keep the clock hand
// moving; run with -race. It pins the invariants concurrency must not bend:
// every acquire observes its own segment's values, every Stats snapshot is
// internally consistent (bytes read implies at least one miss in the same
// epoch), and after the storm quiesces nothing is pinned and one final
// Reset leaves residency at exactly zero.
func TestPoolAcquireResetStatsRace(t *testing.T) {
	f := newTestFetcher()
	p := NewPool(400, f.fetch)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := SegKey{Col: int32((g + i) % 4), Seg: int32((i * 13) % 9)}
				blk, release, err := p.Acquire(k)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if got := blk.Get(0); got != k.Col*1000+k.Seg {
					t.Errorf("goroutine %d: block %v holds %d", g, k, got)
				}
				release()
			}
		}(g)
	}
	var bg sync.WaitGroup
	bg.Add(2)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				p.Reset()
			}
		}
	}()
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st := p.Stats()
				if st.BytesRead > 0 && st.Misses == 0 {
					t.Error("stats epoch split: bytes read with zero misses")
					return
				}
				if st.Resident < 0 {
					t.Errorf("negative residency %d", st.Resident)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	bg.Wait()
	if n := p.PinnedFrames(); n != 0 {
		t.Fatalf("%d frames still pinned after all acquirers released", n)
	}
	p.Reset()
	if st := p.Stats(); st.Resident != 0 {
		t.Fatalf("resident %d after final reset with nothing pinned", st.Resident)
	}
}

// TestPoolReset drops unpinned frames and zeroes counters.
func TestPoolReset(t *testing.T) {
	f := newTestFetcher()
	p := NewPool(0, f.fetch)
	for seg := int32(0); seg < 3; seg++ {
		_, release, _ := p.Acquire(SegKey{0, seg})
		release()
	}
	p.Reset()
	if st := p.Stats(); st.Resident != 0 || st.Misses != 0 {
		t.Fatalf("after reset: %+v", st)
	}
	_, release, err := p.Acquire(SegKey{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	release()
	if st := p.Stats(); st.Misses != 1 {
		t.Fatalf("post-reset acquire was not a cold miss: %+v", st)
	}
}
