package segstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/colstore"
	"repro/internal/compress"
)

// This file is the tuple-mover's on-disk landing: appending frozen delta
// rows to an existing segment file without disturbing readers.
//
// Layout strategy: earlier bytes are never moved or overwritten — not the
// payloads, and not the current footer or trailer. New segment payloads,
// a freshly encoded footer, its CRC, its length and the trailing magic are
// written strictly after the current trailer; the directory swap happens
// in memory, under the store lock, only after the bytes are durably on
// disk. Consequences:
//
//   - In-process readers that materialized tables before the append keep
//     scanning their snapshot: every payload offset they hold still maps
//     to the same bytes.
//   - A crash mid-append leaves the previous trailer fully intact (it
//     just no longer sits at EOF); Open's backward trailer scan
//     (locateFooter) recovers the pre-append state, losing only the rows
//     of the interrupted append, and a writable reopen trims the torn
//     tail.
//   - Each append leaves the superseded footer+trailer behind as dead
//     bytes inside the payload region — the space cost of crash safety,
//     bounded by one directory per tuple-mover pass.
//
// A column whose last live segment is partial cannot simply gain another
// segment after it — positional addressing requires every segment but the
// last to hold exactly colstore.BlockSize rows — so the append merges the
// old tail's rows with the incoming values and re-chunks. The replacement
// segments are written at fresh offsets and get fresh pool frame ids; the
// superseded tail stays on disk (and in phys) as dead-but-addressable space
// for snapshots that still reference it.
//
// An appended 64K-row block may encode larger than a tight pool budget
// (unsorted live writes compress worse than the generator's sorted base).
// That is deliberately not an error — the pool tolerates over-budget
// frames by churning the rest, which degrades performance but never loses
// data; failing the tuple mover here would strand accepted rows instead.

// AppendColumn carries one column's new rows for Append. Values are in the
// column's physical representation (dictionary codes for string columns).
type AppendColumn struct {
	Name string
	Vals []int32
}

// Append appends rows to the named table: every column of the table must be
// present in cols with the same number of values. Sort kinds are re-derived
// (a primary sort survives only if the appended run provably preserves it).
// On success the store's live directory includes the new segments — Table
// calls made after Append see them, snapshots taken before do not.
func (s *Store) Append(table string, cols []AppendColumn) error {
	if !s.writable {
		return fmt.Errorf("segstore: %s: opened read-only; appends need a writable file", s.path)
	}
	s.appendMu.Lock()
	defer s.appendMu.Unlock()

	byName := make(map[string][]int32, len(cols))
	n := -1
	for _, c := range cols {
		if _, dup := byName[c.Name]; dup {
			return fmt.Errorf("segstore: append has duplicate column %q", c.Name)
		}
		if n < 0 {
			n = len(c.Vals)
		} else if len(c.Vals) != n {
			return fmt.Errorf("segstore: append column %q has %d rows, others have %d", c.Name, len(c.Vals), n)
		}
		byName[c.Name] = c.Vals
	}
	if n < 1 {
		return fmt.Errorf("segstore: append needs at least one row")
	}

	// Snapshot the current directory. Appends are serialized, so the
	// directory cannot change under us between here and the final swap.
	s.mu.RLock()
	tm, ok := s.tables[table]
	if !ok {
		s.mu.RUnlock()
		return fmt.Errorf("segstore: %s has no table %q", s.path, table)
	}
	oldCols := append([]*colMeta(nil), tm.cols...)
	cursor := uint64(s.writeEnd)
	pidBase := make([]int32, len(oldCols))
	for i, cm := range oldCols {
		pidBase[i] = int32(len(s.phys[cm.ord]))
	}
	s.mu.RUnlock()

	// Single-writer fence. The store assumes one writing process; a second
	// writable open of the same file (ssb-gen -append racing a live
	// ssb-serve -ingest) would append at a stale offset and overwrite the
	// other writer's bytes. Appends move EOF, so a size that disagrees
	// with our in-memory frontier means someone else wrote — fail loudly
	// instead of corrupting.
	if fi, err := s.f.Stat(); err != nil {
		return fmt.Errorf("segstore: %s: stat before append: %w", s.path, err)
	} else if fi.Size() != int64(cursor) {
		return fmt.Errorf("segstore: %s: file size %d does not match this store's frontier %d — another process appended to it; the segment store supports a single writer", s.path, fi.Size(), cursor)
	}
	if len(byName) != len(oldCols) {
		return fmt.Errorf("segstore: append has %d columns, table %q has %d", len(byName), table, len(oldCols))
	}

	// Encode the new segments per column, merging each partial tail.
	var payload []byte
	var seg []byte
	newCols := make([]*colMeta, len(oldCols))
	newPhys := make([][]segMeta, len(oldCols))
	for i, cm := range oldCols {
		vals, ok := byName[cm.name]
		if !ok {
			return fmt.Errorf("segstore: append missing column %q of table %q", cm.name, table)
		}
		keep := cm.segs
		var merged []int32
		if ns := len(cm.segs); ns > 0 && int(cm.segs[ns-1].rows) < colstore.BlockSize {
			tail := cm.segs[ns-1]
			blk, err := s.readSeg(tail, cm.table, cm.name)
			if err != nil {
				return fmt.Errorf("segstore: merging partial tail: %w", err)
			}
			merged = blk.AppendTo(make([]int32, 0, int(tail.rows)+len(vals)))
			keep = cm.segs[:ns-1]
		}
		prevMax, hasPrev := int32(0), false
		if len(keep) > 0 {
			prevMax, hasPrev = keep[len(keep)-1].max, true
		}
		merged = append(merged, vals...)

		nc := &colMeta{
			table: cm.table,
			name:  cm.name,
			sort:  colstore.AppendSortKind(cm.sort, hasPrev, prevMax, merged),
			dict:  cm.dict,
			ord:   cm.ord,
			segs:  append([]segMeta(nil), keep...),
		}
		nextPid := pidBase[i]
		for off := 0; off < len(merged); off += colstore.BlockSize {
			end := off + colstore.BlockSize
			if end > len(merged) {
				end = len(merged)
			}
			blk := compress.Choose(merged[off:end])
			seg = compress.AppendBlock(blk, seg[:0])
			mn, mx := blk.MinMax()
			nc.segs = append(nc.segs, segMeta{
				off:    cursor,
				plen:   uint64(len(seg)),
				cbytes: uint64(blk.CompressedBytes()),
				enc:    blk.Encoding(),
				rows:   uint32(blk.Len()),
				min:    mn,
				max:    mx,
				crc:    crc32.ChecksumIEEE(seg),
				pid:    nextPid,
			})
			nextPid++
			cursor += uint64(len(seg))
			payload = append(payload, seg...)
		}
		newCols[i] = nc
		newPhys[i] = nc.segs[len(keep):]
	}

	// Render the post-append directory: the grown table plus every other
	// table unchanged.
	s.mu.RLock()
	metas := make([]*tableMeta, 0, len(s.order))
	for _, name := range s.order {
		t := s.tables[name]
		if name == table {
			t = &tableMeta{name: name, cols: newCols}
		}
		metas = append(metas, t)
	}
	writeAt := s.writeEnd
	s.mu.RUnlock()
	footer := encodeFooter(metas)

	// Two-sync commit protocol: payloads and footer must be durable BEFORE
	// the trailer that makes them discoverable. With a single sync the
	// kernel may persist the (CRC-valid) trailer pages but not the payload
	// pages; a crash then yields a file whose EOF trailer validates while
	// its segments are garbage — and the backward-scan recovery never runs.
	// Writing the trailer only after the first sync means a crash can only
	// leave a missing/torn trailer, exactly the state locateFooter recovers.
	body := payload
	body = append(body, footer...)
	if _, err := s.f.WriteAt(body, writeAt); err != nil {
		return fmt.Errorf("segstore: %s: writing append: %w", s.path, err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("segstore: %s: syncing append payload: %w", s.path, err)
	}
	s.syncs.Add(1)
	trailer := binary.LittleEndian.AppendUint32(nil, crc32.ChecksumIEEE(footer))
	trailer = binary.LittleEndian.AppendUint64(trailer, uint64(len(footer)))
	trailer = append(trailer, Magic...)
	if _, err := s.f.WriteAt(trailer, writeAt+int64(len(body))); err != nil {
		return fmt.Errorf("segstore: %s: writing append trailer: %w", s.path, err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("segstore: %s: syncing append trailer: %w", s.path, err)
	}
	s.syncs.Add(1)

	// Durable on disk: swap the live directory.
	s.mu.Lock()
	newTM := &tableMeta{name: table, cols: newCols}
	s.tables[table] = newTM
	for i, nc := range newCols {
		s.cols[nc.ord] = nc
		s.phys[nc.ord] = append(s.phys[nc.ord], newPhys[i]...)
	}
	s.writeEnd = writeAt + int64(len(body)+len(trailer))
	s.mu.Unlock()
	s.pool.noteAppend(int64(len(payload)))
	return nil
}
