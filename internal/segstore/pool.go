package segstore

import (
	"sync"

	"repro/internal/compress"
	"repro/internal/iosim"
)

// SegKey identifies one physical segment in a store: the column's global
// ordinal in the file footer and the segment's physical frame id within the
// column (segMeta.pid). For a freshly opened file frame ids coincide with
// segment indexes; appends assign fresh ids, so a directory snapshot from
// before an append and the post-append directory can both cache their
// (different) tail segments without colliding.
type SegKey struct {
	Col int32
	Seg int32
}

// PoolStats reports what the buffer pool has done since its last reset.
type PoolStats struct {
	// Hits counts Acquire calls answered by a resident segment.
	Hits int64
	// Misses counts Acquire calls that had to fetch from storage. With an
	// unbounded budget every distinct segment misses exactly once, so
	// Misses is also the count of distinct segments ever read.
	Misses int64
	// Evictions counts segments dropped to stay under the byte budget.
	Evictions int64
	// BytesRead is the total payload bytes fetched from storage.
	BytesRead int64
	// Resident is the current resident byte total; Peak its high-water
	// mark (may exceed the budget when every frame is pinned). Frames hold
	// wire-native blocks, so Resident counts compressed payload bytes —
	// the bytes the budget is spent on.
	Resident int64
	Peak     int64
	// ResidentLogical is the decoded (4 B/value) size of the same resident
	// segments — what a pool that eagerly decoded on load would need for
	// this working set. ResidentLogical / Resident is the pool's effective
	// compression ratio; the gap is capacity the wire-native design wins.
	ResidentLogical int64
	// Appends counts Store.Append calls (tuple-mover compactions landing
	// on this file); AppendedBytes their total payload bytes. Reset zeroes
	// them with the rest of the epoch's counters.
	Appends       int64
	AppendedBytes int64
	// IO prices the pool's physical storage traffic in the simulated-disk
	// model: payload bytes plus one seek per miss (segments are fetched by
	// random offset, not sequentially). This is the *physical* side of the
	// accounting split — executors keep charging logical reads to their
	// own iosim.Stats exactly as the in-memory engines do, so results and
	// logical I/O stay bit-identical, while the pool records what actually
	// hit "disk" (cold misses only, not warm hits).
	IO iosim.Stats
}

// fetchFunc loads and decodes one segment, returning the block and its
// on-disk payload size.
type fetchFunc func(k SegKey) (compress.IntBlock, int64, error)

// frame is one resident (or loading) segment.
type frame struct {
	key     SegKey
	blk     compress.IntBlock
	bytes   int64 // compressed payload bytes (what the budget charges)
	logical int64 // decoded size, 4 B/value (reporting only)
	pins    int
	ref     bool          // clock reference bit
	ready   chan struct{} // closed once blk/err are populated
	err     error
}

// Pool is the buffer manager: a byte-budgeted cache of wire-native segment
// blocks (RLE runs, packed words — never eagerly decoded value slices; the
// budget charges compressed payload bytes) with pinned-reference counting
// and clock (second-chance) eviction.
// All methods are safe for concurrent use; the fused executor's morsel
// workers acquire segments from many goroutines at once. The pool lock is
// never held across a storage fetch — concurrent misses on different
// segments overlap, and concurrent requests for the same loading segment
// wait on the frame's ready channel.
type Pool struct {
	mu      sync.Mutex
	budget  int64             // <= 0 means unbounded; immutable after NewPool
	used    int64             // guarded by mu
	logical int64             // guarded by mu; decoded size of resident frames (reporting only)
	frames  map[SegKey]*frame // guarded by mu
	ring    []*frame          // guarded by mu; clock order
	hand    int               // guarded by mu
	stats   PoolStats         // guarded by mu
	fetch   fetchFunc
}

// NewPool returns a pool that fetches segments through fetch and keeps at
// most budget resident payload bytes (<= 0 for unbounded). Pinned frames
// are never evicted, so the budget is exceeded transiently when a query
// pins more than fits.
func NewPool(budget int64, fetch fetchFunc) *Pool {
	return &Pool{budget: budget, frames: map[SegKey]*frame{}, fetch: fetch}
}

// Budget returns the configured byte budget (<= 0 means unbounded).
func (p *Pool) Budget() int64 { return p.budget }

// Acquire returns the decoded segment for k, pinned until the returned
// release function is called (exactly once).
func (p *Pool) Acquire(k SegKey) (compress.IntBlock, func(), error) {
	p.mu.Lock()
	if f, ok := p.frames[k]; ok {
		f.pins++
		f.ref = true
		p.stats.Hits++
		p.mu.Unlock()
		<-f.ready
		if f.err != nil {
			p.unpin(f)
			return nil, nil, f.err
		}
		return f.blk, func() { p.unpin(f) }, nil
	}
	f := &frame{key: k, pins: 1, ready: make(chan struct{})}
	p.frames[k] = f
	p.ring = append(p.ring, f)
	p.mu.Unlock()

	blk, bytes, err := p.fetch(k)

	// The whole stats entry for a miss (the miss count, its payload bytes
	// and its priced physical I/O) commits under one lock hold at fetch
	// completion, not at registration: a Reset that lands mid-fetch then
	// sees either none of the miss or all of it, never a Misses tick whose
	// BytesRead was zeroed away (or vice versa). A fetch in flight across a
	// Reset is charged to the epoch in which it completes — the epoch its
	// frame is resident in.
	p.mu.Lock()
	p.stats.Misses++
	if err != nil {
		// Drop the frame so a later Acquire can retry; waiters observe
		// the error through the frame they already hold.
		f.err = err
		p.removeLocked(f)
		close(f.ready)
		p.mu.Unlock()
		p.unpin(f)
		return nil, nil, err
	}
	f.blk, f.bytes = blk, bytes
	f.logical = int64(blk.Len()) * 4
	p.used += bytes
	p.logical += f.logical
	p.stats.BytesRead += bytes
	p.stats.IO.Read(bytes)
	p.stats.IO.AddSeeks(1)
	if p.used > p.stats.Peak {
		p.stats.Peak = p.used
	}
	p.evictLocked()
	close(f.ready)
	p.mu.Unlock()
	return blk, func() { p.unpin(f) }, nil
}

// unpin decrements a frame's pin count. If the pool was forced over budget
// while everything was pinned, the release that makes frames evictable
// sweeps back under budget — without this, a workload whose last miss
// happened under heavy pinning would sit over budget until some future
// miss.
func (p *Pool) unpin(f *frame) {
	p.mu.Lock()
	f.pins--
	if p.budget > 0 && p.used > p.budget {
		p.evictLocked()
	}
	p.mu.Unlock()
}

// evictLocked runs the clock hand until the pool fits its budget or a full
// double sweep finds nothing evictable (everything pinned). First pass over
// a referenced frame clears its reference bit; second pass evicts it —
// standard second-chance. holds mu.
func (p *Pool) evictLocked() {
	if p.budget <= 0 {
		return
	}
	scanned := 0
	for p.used > p.budget && scanned < 2*len(p.ring) {
		if len(p.ring) == 0 {
			return
		}
		if p.hand >= len(p.ring) {
			p.hand = 0
		}
		f := p.ring[p.hand]
		switch {
		case f.pins > 0:
			p.hand++
		case f.ref:
			f.ref = false
			p.hand++
		default:
			p.used -= f.bytes
			p.logical -= f.logical
			p.stats.Evictions++
			p.removeLocked(f)
			// removeLocked moved another frame into this slot; do not
			// advance the hand.
			continue
		}
		scanned++
	}
}

// removeLocked detaches f from the map and the clock ring (swap-remove).
// holds mu.
func (p *Pool) removeLocked(f *frame) {
	delete(p.frames, f.key)
	for i, g := range p.ring {
		if g == f {
			p.ring[i] = p.ring[len(p.ring)-1]
			p.ring = p.ring[:len(p.ring)-1]
			break
		}
	}
	if p.hand >= len(p.ring) {
		p.hand = 0
	}
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Resident = p.used
	s.ResidentLogical = p.logical
	return s
}

// noteAppend records one append pass's payload bytes landing on the
// backing file.
func (p *Pool) noteAppend(bytes int64) {
	p.mu.Lock()
	p.stats.Appends++
	p.stats.AppendedBytes += bytes
	p.mu.Unlock()
}

// PinnedFrames returns the number of frames with a nonzero pin count. A
// quiesced pool (no query in flight) must report zero — every executor path
// releases each block it acquires before moving on, and the leak-check
// tests assert this after every full query run.
func (p *Pool) PinnedFrames() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, f := range p.ring {
		if f.pins > 0 {
			n++
		}
	}
	return n
}

// Reset drops every unpinned frame and zeroes the counters, so a following
// run measures a cold cache. Pinned frames (a concurrent query in flight)
// survive with their bytes still counted, and a fetch in flight at reset
// time commits its miss/bytes entry to the new epoch when it completes
// (see Acquire) — the counters stay internally consistent either way.
func (p *Pool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	kept := p.ring[:0]
	for _, f := range p.ring {
		if f.pins > 0 {
			kept = append(kept, f)
			continue
		}
		delete(p.frames, f.key)
		p.used -= f.bytes
		p.logical -= f.logical
	}
	p.ring = kept
	p.hand = 0
	p.stats = PoolStats{}
}
