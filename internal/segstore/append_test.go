package segstore

import (
	"bytes"
	"math/rand"
	"os"
	"strings"
	"testing"

	"repro/internal/colstore"
)

// appendCols builds an AppendColumn set of n rows for the test table: the
// "sorted" column either continues ascending from base or breaks order.
func appendCols(n int, sortedBase int32, ascending bool, seed int64) []AppendColumn {
	rng := rand.New(rand.NewSource(seed))
	sorted := make([]int32, n)
	lowCard := make([]int32, n)
	mono := make([]int32, n)
	region := make([]int32, n)
	for i := 0; i < n; i++ {
		if ascending {
			sorted[i] = sortedBase + int32(i/3)
		} else {
			sorted[i] = rng.Int31n(sortedBase + 1)
		}
		lowCard[i] = rng.Int31n(4)
		mono[i] = rng.Int31n(1 << 20)
		region[i] = rng.Int31n(5)
	}
	return []AppendColumn{
		{Name: "sorted", Vals: sorted},
		{Name: "lowcard", Vals: lowCard},
		{Name: "mono", Vals: mono},
		{Name: "region", Vals: region},
	}
}

// decodeCol decodes one column of a materialized table.
func decodeCol(t *testing.T, tab *colstore.Table, name string) []int32 {
	t.Helper()
	return tab.MustColumn(name).DecodeAll(nil, nil)
}

// TestAppendRoundTrip appends twice to a table whose tail segment is
// partial both times, and verifies: values round-trip bit-identically
// (live directory and cold reopen), every interior segment stays exactly
// BlockSize rows, the old directory snapshot is unaffected, and the append
// counters tick.
func TestAppendRoundTrip(t *testing.T) {
	rows := colstore.BlockSize + 500 // partial tail from the start
	tab := buildTestTable(t, rows)
	st, path := saveTestStore(t, tab, 0)

	want := map[string][]int32{}
	for _, name := range tab.ColumnNames() {
		want[name] = decodeCol(t, tab, name)
	}
	snapshot, err := st.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	snapRows := snapshot.NumRows()

	appends := [][]AppendColumn{
		appendCols(70000, int32(rows/3), true, 1), // > one block: tail top-up + new blocks + partial tail
		appendCols(333, int32((rows+70000)/3), true, 2),
	}
	for ai, cols := range appends {
		if err := st.Append("t", cols); err != nil {
			t.Fatalf("append %d: %v", ai, err)
		}
		for _, c := range cols {
			want[c.Name] = append(want[c.Name], c.Vals...)
		}
	}

	check := func(label string, s *Store) {
		t.Helper()
		got, err := s.Table("t")
		if err != nil {
			t.Fatalf("%s: Table: %v", label, err)
		}
		if got.NumRows() != rows+70000+333 {
			t.Fatalf("%s: NumRows = %d want %d", label, got.NumRows(), rows+70000+333)
		}
		for name, w := range want {
			col := got.MustColumn(name)
			for i := 0; i < col.NumBlocks()-1; i++ {
				if col.BlockLen(i) != colstore.BlockSize {
					t.Fatalf("%s: column %q interior segment %d has %d rows", label, name, i, col.BlockLen(i))
				}
			}
			g := col.DecodeAll(nil, nil)
			if len(g) != len(w) {
				t.Fatalf("%s: column %q has %d values, want %d", label, name, len(g), len(w))
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("%s: column %q value %d = %d, want %d", label, name, i, g[i], w[i])
				}
			}
		}
		// The ascending append preserves the primary sort; zone maps must
		// still prune.
		if got.MustColumn("sorted").Sorted != colstore.PrimarySort {
			t.Errorf("%s: ascending append demoted the primary sort", label)
		}
	}
	check("live", st)

	// The snapshot taken before the appends still reads its own rows —
	// including its (replaced) partial tail, via its retained frame id.
	if snapshot.NumRows() != snapRows {
		t.Fatalf("pre-append snapshot grew from %d to %d rows", snapRows, snapshot.NumRows())
	}
	for _, name := range []string{"sorted", "mono"} {
		g := decodeCol(t, snapshot, name)
		for i := range g {
			if g[i] != want[name][i] {
				t.Fatalf("snapshot column %q value %d changed after append", name, i)
			}
		}
	}

	ps := st.Pool().Stats()
	if ps.Appends != 2 || ps.AppendedBytes == 0 {
		t.Errorf("append counters: %d passes / %d bytes, want 2 passes and nonzero bytes", ps.Appends, ps.AppendedBytes)
	}

	st2, err := Open(path, 0)
	if err != nil {
		t.Fatalf("cold reopen: %v", err)
	}
	defer st2.Close()
	check("cold", st2)
}

// TestAppendDemotesSortKind verifies that an append breaking ascending
// order demotes the primary sort in the new directory while the pre-append
// snapshot keeps it (its data really is sorted).
func TestAppendDemotesSortKind(t *testing.T) {
	tab := buildTestTable(t, colstore.BlockSize+100)
	st, path := saveTestStore(t, tab, 0)
	before, _ := st.Table("t")

	if err := st.Append("t", appendCols(1000, 50, false, 3)); err != nil {
		t.Fatal(err)
	}
	after, _ := st.Table("t")
	if after.MustColumn("sorted").Sorted != colstore.Unsorted {
		t.Error("out-of-order append kept PrimarySort — sorted-filter fast path would return wrong results")
	}
	if before.MustColumn("sorted").Sorted != colstore.PrimarySort {
		t.Error("pre-append snapshot lost its sort kind")
	}
	st2, err := Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cold, _ := st2.Table("t")
	if cold.MustColumn("sorted").Sorted != colstore.Unsorted {
		t.Error("demotion not persisted in the rewritten footer")
	}
}

// TestAppendValidation covers the append error paths: wrong column set,
// ragged lengths, unknown table, empty batch.
func TestAppendValidation(t *testing.T) {
	tab := buildTestTable(t, 1000)
	st, _ := saveTestStore(t, tab, 0)
	cases := []struct {
		name string
		tab  string
		cols []AppendColumn
		want string
	}{
		{"missing column", "t", []AppendColumn{{Name: "sorted", Vals: []int32{1}}}, "has 4"},
		{"unknown table", "nope", appendCols(10, 0, true, 1), "no table"},
		{"empty", "t", []AppendColumn{{Name: "sorted"}, {Name: "lowcard"}, {Name: "mono"}, {Name: "region"}}, "at least one row"},
		{"ragged", "t", []AppendColumn{
			{Name: "sorted", Vals: []int32{1, 2}}, {Name: "lowcard", Vals: []int32{1}},
			{Name: "mono", Vals: []int32{1, 2}}, {Name: "region", Vals: []int32{0, 0}},
		}, "others have"},
	}
	for _, tc := range cases {
		err := st.Append(tc.tab, tc.cols)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// TestOpenRejectsUndersizedBudget pins the livelock guard: a bounded budget
// smaller than the largest single segment must be rejected at open with an
// actionable message, while a budget clearing every segment (or an
// unbounded one) opens fine.
func TestOpenRejectsUndersizedBudget(t *testing.T) {
	tab := buildTestTable(t, 2*colstore.BlockSize)
	_, path := saveTestStore(t, tab, 0)

	if _, err := Open(path, 1024); err == nil || !strings.Contains(err.Error(), "smaller than the largest segment") {
		t.Fatalf("1KB budget: err = %v, want largest-segment rejection", err)
	}
	// No segment can exceed a fully decoded block plus wire framing.
	generous := int64(colstore.BlockSize*4 + 1024)
	st2, err := Open(path, generous)
	if err != nil {
		t.Fatalf("budget %d open: %v", generous, err)
	}
	st2.Close()
	st3, err := Open(path, 0)
	if err != nil {
		t.Fatalf("unbounded open: %v", err)
	}
	st3.Close()
}

// TestTornAppendRecovery pins crash safety: a crash mid-append leaves the
// previous trailer intact but not at EOF. Open must recover the pre-append
// state by backward scan (losing only the interrupted batch), and a
// writable reopen trims the torn tail so a follow-up append works.
func TestTornAppendRecovery(t *testing.T) {
	tab := buildTestTable(t, colstore.BlockSize+500)
	st, path := saveTestStore(t, tab, 0)
	if err := st.Append("t", appendCols(2000, int32((colstore.BlockSize+500)/3), true, 4)); err != nil {
		t.Fatal(err)
	}
	rowsAfterFirst := colstore.BlockSize + 500 + 2000
	st.Close()

	// Simulate a crash partway through a second append: garbage payload
	// bytes land after the trailer, but no valid new trailer does.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		t.Fatal(err)
	}
	garbage := bytes.Repeat([]byte{0xAB, 0x00, 0x55}, 4321)
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := Open(path, 0)
	if err != nil {
		t.Fatalf("open after torn append: %v (the previous trailer must be recovered)", err)
	}
	got, err := re.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != rowsAfterFirst {
		t.Fatalf("recovered table has %d rows, want %d", got.NumRows(), rowsAfterFirst)
	}
	// The writable reopen self-healed: the next append must round-trip.
	if err := re.Append("t", appendCols(100, int32(rowsAfterFirst/3), true, 5)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	re.Close()
	re2, err := Open(path, 0)
	if err != nil {
		t.Fatalf("reopen after healed append: %v", err)
	}
	defer re2.Close()
	got2, _ := re2.Table("t")
	if got2.NumRows() != rowsAfterFirst+100 {
		t.Fatalf("post-heal table has %d rows, want %d", got2.NumRows(), rowsAfterFirst+100)
	}
}
