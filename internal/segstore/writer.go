package segstore

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/colstore"
	"repro/internal/compress"
)

// Write serializes tables to w in segment-store format. Table and column
// order is preserved; each column's blocks are written in their existing
// encodings (the per-segment scheme compress.Choose picked when the column
// was built), each with a zone-map footer entry.
func Write(w io.Writer, sf float64, tables []*colstore.Table) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(sf)); err != nil {
		return err
	}
	off := uint64(len(Magic) + 8)

	var metas []*tableMeta
	var payload []byte
	for _, t := range tables {
		tm := &tableMeta{name: t.Name}
		for _, colName := range t.ColumnNames() {
			col := t.MustColumn(colName)
			cm := &colMeta{table: t.Name, name: colName, sort: col.Sorted, dict: col.Dict}
			for bi := 0; bi < col.NumBlocks(); bi++ {
				blk, release := col.AcquireBlock(bi)
				payload = compress.AppendBlock(blk, payload[:0])
				mn, mx := blk.MinMax()
				cm.segs = append(cm.segs, segMeta{
					off:    off,
					plen:   uint64(len(payload)),
					cbytes: uint64(blk.CompressedBytes()),
					enc:    blk.Encoding(),
					rows:   uint32(blk.Len()),
					min:    mn,
					max:    mx,
					crc:    crc32.ChecksumIEEE(payload),
				})
				release()
				if _, err := bw.Write(payload); err != nil {
					return err
				}
				off += uint64(len(payload))
			}
			tm.cols = append(tm.cols, cm)
		}
		metas = append(metas, tm)
	}

	footer := encodeFooter(metas)
	if _, err := bw.Write(footer); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, crc32.ChecksumIEEE(footer)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(footer))); err != nil {
		return err
	}
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	return bw.Flush()
}

// Save writes the tables to path atomically (temp file + rename).
func Save(path string, sf float64, tables []*colstore.Table) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Write(f, sf, tables); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
