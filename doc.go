// Package repro is a from-scratch Go reproduction of "Column-Stores vs.
// Row-Stores: How Different Are They Really?" (Abadi, Madden, Hachem,
// SIGMOD 2008).
//
// The repository contains a C-Store-style column engine (internal/colstore,
// internal/compress, internal/exec), a "System X"-style row engine
// (internal/rowstore, internal/btree, internal/rowexec), the Star Schema
// Benchmark substrate (internal/ssb), an analytic disk model
// (internal/iosim), and a facade (internal/core) that runs all thirteen
// SSBM queries under every physical design and executor configuration the
// paper evaluates. The benchmarks in bench_test.go and the cmd/ssb-bench
// harness regenerate the paper's Figures 5-8 plus the Section 6.1/6.2
// side experiments.
//
// Beyond the fixed benchmark, the logical plan is workload-open: ssb.Query
// expresses arbitrary ad-hoc star queries (any dimension filters, any
// measure predicates, any group-by set, multi-aggregate SUM/COUNT/MIN/MAX
// lists), the SQL frontend (internal/sql) parses the same space, and every
// engine executes it. ssb.RandQuery samples that plan space
// deterministically from a seed; the differential harness
// (internal/exec TestDifferential, cmd/ssb-fuzz) runs each sampled query
// through the brute-force reference, the per-probe and fused column
// pipelines, and the row-store designs, demanding byte-identical results —
// a standing cross-engine correctness oracle. PERFORMANCE.md documents the
// harness, the seed-replay workflow and the pinned golden results.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
