// Package repro is a from-scratch Go reproduction of "Column-Stores vs.
// Row-Stores: How Different Are They Really?" (Abadi, Madden, Hachem,
// SIGMOD 2008).
//
// The repository contains a C-Store-style column engine (internal/colstore,
// internal/compress, internal/exec), a "System X"-style row engine
// (internal/rowstore, internal/btree, internal/rowexec), the Star Schema
// Benchmark substrate (internal/ssb), an analytic disk model
// (internal/iosim), and a facade (internal/core) that runs all thirteen
// SSBM queries under every physical design and executor configuration the
// paper evaluates. The benchmarks in bench_test.go and the cmd/ssb-bench
// harness regenerate the paper's Figures 5-8 plus the Section 6.1/6.2
// side experiments.
//
// Storage is two-tier. The in-memory tier (internal/colstore) holds
// resident encoded blocks; the persistent tier (internal/segstore) is an
// on-disk columnar format — every column split into 64K-row segments
// stored compressed under the encoding internal/compress chose, each with
// a persisted zone map (min/max, row count, encoding tag, CRC32) — plus a
// buffer manager with pinned-segment reference counting and clock
// eviction under a byte budget. Executors reach both tiers through one
// colstore.Column API: zone-map queries never perform I/O, so min/max
// pruning skips segments before they are ever read or decompressed, and
// larger-than-memory scale factors run under ssb-query/ssb-bench
// -mem-budget. ssb-gen -out writes either tier's format (.seg for the
// segment store, anything else for the v1 raw dump; loaders sniff the
// magic).
//
// Beyond the fixed benchmark, the logical plan is workload-open: ssb.Query
// expresses arbitrary ad-hoc star queries (any dimension filters, any
// measure predicates, any group-by set, multi-aggregate SUM/COUNT/MIN/MAX
// lists), the SQL frontend (internal/sql) parses the same space, and every
// engine executes it. ssb.RandQuery samples that plan space
// deterministically from a seed; the differential harness
// (internal/exec TestDifferential, cmd/ssb-fuzz) runs each sampled query
// through the brute-force reference, the per-probe and fused column
// pipelines, and the row-store designs, demanding byte-identical results —
// a standing cross-engine correctness oracle. PERFORMANCE.md documents the
// harness, the seed-replay workflow and the pinned golden results.
//
// The engine also serves concurrent traffic: internal/server executes
// queries from any number of clients against one shared DB — one buffer
// pool, one scratch pool — with results guaranteed bit-identical to serial
// reference execution. Cancellation is first-class (exec.DB.RunCtx checks
// the context between 64K-row blocks, so an abandoned query releases every
// pinned segment within one block), a FIFO byte-budget semaphore sized
// from exec.DB.EstimateFootprint keeps concurrent queries from thrashing a
// small buffer pool into livelock, and a normalized-SQL-keyed LRU caches
// repeated results. cmd/ssb-serve exposes it over HTTP JSON (/query by
// SSBM id, ad-hoc SQL, or generator seed; /stats for server, cache and
// pool counters), and ssb-bench -figure serve measures throughput/latency
// against client count and pool budget. The 16-client x 200-random-plan
// stress test in internal/server and the pin-leak/golden-equivalence tests
// in internal/exec pin the concurrency contract under -race.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
