// Package repro is a from-scratch Go reproduction of "Column-Stores vs.
// Row-Stores: How Different Are They Really?" (Abadi, Madden, Hachem,
// SIGMOD 2008).
//
// The repository contains a C-Store-style column engine (internal/colstore,
// internal/compress, internal/exec), a "System X"-style row engine
// (internal/rowstore, internal/btree, internal/rowexec), the Star Schema
// Benchmark substrate (internal/ssb), an analytic disk model
// (internal/iosim), and a facade (internal/core) that runs all thirteen
// SSBM queries under every physical design and executor configuration the
// paper evaluates. The benchmarks in bench_test.go and the cmd/ssb-bench
// harness regenerate the paper's Figures 5-8 plus the Section 6.1/6.2
// side experiments.
//
// Storage is two-tier. The in-memory tier (internal/colstore) holds
// resident encoded blocks; the persistent tier (internal/segstore) is an
// on-disk columnar format — every column split into 64K-row segments
// stored compressed under the encoding internal/compress chose, each with
// a persisted zone map (min/max, row count, encoding tag, CRC32) — plus a
// buffer manager with pinned-segment reference counting and clock
// eviction under a byte budget. Pool frames hold segments wire-native
// (RLE runs, packed words — never eagerly decoded value slices), so the
// budget is charged compressed payload bytes and the encoding-native
// kernels (compress.IntBlock AggSelect/GatherSelect/Filter) aggregate,
// gather and filter directly on that compressed representation — the
// paper's Section 5 "operate on compressed data" design, ablatable with
// exec.Config.NoKernels. Executors reach both tiers through one
// colstore.Column API: zone-map queries never perform I/O, so min/max
// pruning skips segments before they are ever read or decompressed, and
// larger-than-memory scale factors run under ssb-query/ssb-bench
// -mem-budget. ssb-gen -out writes either tier's format (.seg for the
// segment store, anything else for the v1 raw dump; loaders sniff the
// magic).
//
// Beyond the fixed benchmark, the logical plan is workload-open: ssb.Query
// expresses arbitrary ad-hoc star queries (any dimension filters, any
// measure predicates, any group-by set, multi-aggregate SUM/COUNT/MIN/MAX
// lists), the SQL frontend (internal/sql) parses the same space, and every
// engine executes it. ssb.RandQuery samples that plan space
// deterministically from a seed; the differential harness
// (internal/exec TestDifferential, cmd/ssb-fuzz) runs each sampled query
// through the brute-force reference, the per-probe and fused column
// pipelines, and the row-store designs, demanding byte-identical results —
// a standing cross-engine correctness oracle. PERFORMANCE.md documents the
// harness, the seed-replay workflow and the pinned golden results.
//
// The store takes writes through the paper's WS/RS split: a
// write-optimized store (internal/delta) absorbs insert batches in memory
// as columnar row batches with per-column running min/max (zone-map
// pruning works on unflushed data), while the read-optimized compressed
// store keeps serving scans, and a tuple mover (the compactor in
// internal/exec) freezes block-aligned delta prefixes into
// compress.Choose-encoded 64K-row segments appended atomically to the
// segment file — new payloads, a fresh CRC-checked footer and a new
// trailer land strictly after the old trailer before the in-memory
// directory swaps, so concurrent readers keep their snapshot and a crash
// mid-append costs only the interrupted batch: open recovers the previous
// trailer by backward scan. Every query
// resolves one consistent (sealed segments, delta watermark) pair at
// start: each engine scans the sealed store unchanged and unions the
// write-store partial, so a query started before an insert never observes
// it and one started after always does. exec.DB.Insert validates and
// remaps logical rows (foreign keys to dimension positions, strings to
// frozen dictionary codes); ssb-gen -append drives the same path from the
// CLI, and TestIngestDifferential pins every engine against a
// rebuilt-from-scratch reference at every epoch.
//
// Ingest is durable and transactional when a write-ahead log is attached
// (internal/wal; ssb-serve -wal, ssb-gen -append -wal). Every insert batch
// and delete appends a CRC-framed, LSN-stamped record and is acknowledged
// only after a group commit makes it fsync-durable — the first committer
// in a window issues one fsync covering everyone who appended meanwhile,
// so sustained multi-stream load pays far fewer fsyncs than batches
// (measured in PERFORMANCE.md). Opening a log replays it into the write
// store, tolerating a torn tail and inferring an un-checkpointed
// compaction from the segment file's actual length, so a kill -9 at any
// instant loses nothing acked and duplicates nothing; after each
// compaction the log is atomically rewritten to just a snapshot of the
// surviving delta. Deletes are C-Store deletion vectors: DB.Delete
// tombstones every row matching a conjunction of identity-valued fact
// predicates in epoch-versioned bitmaps (one masking the sealed store,
// one the write store) that every engine's scan consults, and the tuple
// mover purges write-store tombstones as it seals. TestCrashRecovery
// SIGKILLs a child ingester at random points and asserts the
// exactly-once contract against its fsynced intent/ack ledger.
//
// The engine also serves concurrent traffic: internal/server executes
// queries from any number of clients against one shared DB — one buffer
// pool, one scratch pool — with results guaranteed bit-identical to serial
// reference execution. Cancellation is first-class (exec.DB.RunCtx checks
// the context between 64K-row blocks, so an abandoned query releases every
// pinned segment within one block), a FIFO byte-budget semaphore sized
// from exec.DB.EstimateFootprint keeps concurrent queries from thrashing a
// small buffer pool into livelock, and an epoch-keyed (SQL + data
// version) LRU caches repeated results — an insert bumps the epoch, so
// stale entries stop being addressable. cmd/ssb-serve exposes it over
// HTTP JSON (/query by SSBM id, ad-hoc SQL, or generator seed; /insert
// for row batches; /stats for server, cache, write-store and pool
// counters), and ssb-bench -figure serve measures throughput/latency
// against client count and pool budget. The 16-client x 200-random-plan
// stress test in internal/server and the pin-leak/golden-equivalence tests
// in internal/exec pin the concurrency contract under -race.
//
// Execution is observable per query (internal/obs): a trace carried in the
// context records, for every plan stage, candidates in/out, blocks
// zone-map-pruned vs covered vs fetched, simulated and decoded bytes,
// kernel folds vs decode-path gathers, tombstones masked, and wall clock —
// with the guarantee (pinned by trace tests across every engine) that
// tracing changes neither results nor I/O accounting, that stage counters
// sum exactly to the query's iosim.Stats, and that block fetches reconcile
// with the buffer pool's hit+miss count. ssb-query -explain prints the
// stage table after one real execution (EXPLAIN ANALYZE), /query?trace=1
// returns it as JSON, ssb-serve -slow-ms logs a compact line per
// over-threshold query, and /metrics exposes server counters, pool gauges
// and latency histograms as Prometheus text from a dependency-free
// registry.
//
// The serving layer keeps a flight recorder on top of that: every query —
// engine run, cache hit, admission reject — is appended to a bounded
// in-memory ring (obs.Recorder) with its plan, engine, epoch, wait/exec
// wall time and stage rollup, served newest-first at /debug/queries with
// windowed per-engine×flight percentiles at /debug/summary; a second ring
// (obs.History) samples the metrics registry on a cadence and serves
// deltas and per-second rates at /metrics/history. ssb-serve -debug-addr
// starts an opt-in listener carrying net/http/pprof plus the same debug
// endpoints, cmd/ssb-top renders the whole read path as a terminal
// dashboard (live, or -once for CI), and cmd/ssb-bench -json writes a
// normalized measurement artifact that -baseline/-check diffs against a
// committed baseline so CI fails on performance regressions past
// tolerance.
//
// The repository checks its own invariants statically: cmd/ssb-lint
// (internal/lint) type-checks the whole module with nothing beyond the
// standard library's go/parser and go/types — module-internal imports from
// source, the standard library through the source importer, so go.mod
// stays dependency-free — and runs six analyzers over it: pinleak (every
// buffer-pool pin released on all paths), ctxloop (block loops in
// internal/exec and internal/colstore observe cancellation), stats-
// discipline (iosim.Stats mutated only through its own API, no
// atomic/plain mixing), nologprint (internal packages print only through
// injected loggers), guardedby ("// guarded by <mu>" fields accessed only
// under that mutex), and closeerr (Close errors checked or explicitly
// discarded). The CI lint job fails on any diagnostic; a finding is
// suppressed only by "//lint:ignore <analyzer> <reason>", making every
// exception executable documentation. PERFORMANCE.md's "Invariants"
// section maps each analyzer to the PR whose guarantee it pins.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
